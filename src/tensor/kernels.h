#ifndef CHAINSFORMER_TENSOR_KERNELS_H_
#define CHAINSFORMER_TENSOR_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

namespace chainsformer {
namespace tensor {
namespace kernels {

// Dense float32 kernel layer behind tensor/ops.cc. All GEMM variants are
// row-major and accumulate into the output (`C += ...`), which serves both
// the forward pass (outputs start zeroed) and gradient accumulation.
//
// Threading model: work is partitioned by output row over a process-wide
// worker pool; every output row is produced by exactly one thread with a
// fixed k-traversal order, so results are bitwise identical for any thread
// count. Matrices below a flop threshold are computed inline on the calling
// thread. Worker tasks never launch nested parallel sections, so the layer
// is safe to call from other thread pools (e.g. the per-query eval pool).

/// Sets the process-wide kernel thread count. 1 (the default) keeps every
/// kernel on the calling thread; 0 means std::thread::hardware_concurrency.
/// Not thread-safe against concurrently running kernels — call it at
/// startup / model construction, not mid-training-step.
void SetKernelThreads(int n);

/// Currently configured kernel thread count (>= 1).
int KernelThreads();

/// C[m,n] += A[m,k] * B[k,n].
void GemmAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
             float* c);

/// C[m,k] += G[m,n] * B[k,n]^T — the dA product of a matmul backward.
void GemmBtAcc(int64_t m, int64_t k, int64_t n, const float* g, const float* b,
               float* c);

/// C[k,n] += A[m,k]^T * G[m,n] — the dB product of a matmul backward.
void GemmAtAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* g,
               float* c);

/// Single-threaded variants, for callers that already parallelized at an
/// outer level (e.g. BatchMatMul over the batch dimension). Bitwise
/// identical to the parallel variants.
void GemmAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                   const float* b, float* c);
void GemmBtAccSerial(int64_t m, int64_t k, int64_t n, const float* g,
                     const float* b, float* c);
void GemmAtAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                     const float* g, float* c);

/// Number of non-finite (NaN or +/-Inf) values among x[0..n). Uses the same
/// ParallelRanges dispatch as the GEMM kernels — large scans are partitioned
/// over the worker pool with per-range partial counts — and a branch-free
/// exponent-mask inner loop that vectorizes under -O3. The tape sanitizer's
/// full-mode poison scan is built on this.
int64_t CountNonFinite(const float* x, int64_t n);

/// Runs fn(begin, end) over disjoint sub-ranges of [0, n). `cost_per_item`
/// is a rough flop/byte weight per index used against the grain threshold:
/// small totals run inline as a single fn(0, n) call. Ranges are disjoint,
/// so any fn writing only to its own indices is race-free and (being the
/// same per-index arithmetic regardless of partition) deterministic.
void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn);

// ---- Reduced-precision weight storage + GEMM paths (DESIGN §6g) ------------
//
// Inference-only weight formats for the static-graph serve path. Weights are
// frozen at serve time, so they can be stored once in a reduced format and
// streamed through a cheaper inner loop; activations stay float32 and are
// quantized per row on the fly (int8 path) or untouched (bf16 path). The
// accuracy-sensitive ops — Poincaré distance, LayerNorm, softmax — never go
// through these kernels.
//
// Determinism: the int8 path accumulates in exact int32 arithmetic and the
// dequantization applies one fixed per-element float expression, so results
// are bitwise identical across thread counts AND across the scalar/AVX2/VNNI
// dispatch. The bf16 path widens the stored weights back to float32 (exact)
// and reuses the strip-invariant float GEMM, so it inherits the float
// kernels' thread-count invariance.

/// Depth chunk of the int8 dot-product kernels: one vpdpbusd / maddubs step
/// consumes 4 activation bytes per output lane, so packed operands pad k up
/// to a multiple of 4 and the inner loops never need a k tail.
inline constexpr int64_t kInt8KChunk = 4;

/// Column-group width of the interleaved weight layout: one 256-bit weight
/// tile holds kInt8KChunk depth values for 8 adjacent output columns, so n
/// pads up to a multiple of 8 (zero columns) and the SIMD cores never need a
/// column tail.
inline constexpr int64_t kInt8ColGroup = 8;

/// k rounded up to the int8 dot-product chunk.
inline int64_t Int8PaddedDepth(int64_t k) {
  return (k + kInt8KChunk - 1) / kInt8KChunk * kInt8KChunk;
}

/// n rounded up to the int8 column-group width. The int32 accumulator buffer
/// handed to Int8GemmI32* must be [m, Int8PaddedCols(n)] — padding columns
/// are written (zeros) and ignored by the dequant epilogue.
inline int64_t Int8PaddedCols(int64_t n) {
  return (n + kInt8ColGroup - 1) / kInt8ColGroup * kInt8ColGroup;
}

/// Packed right-hand operand of the int8 GEMM: the weight matrix B[k, n] in
/// the dot-product-interleaved layout [n_padded/8][k_padded/4][8 cols][4 k]
/// (zero-padded in both k and n), so one 32-byte tile feeds one vpdpbusd that
/// accumulates 8 output columns at once — no horizontal reductions anywhere.
/// Element (kk, j) lives at
///   data[((j/8) * (k_padded/4) + kk/4) * 32 + (j%8) * 4 + kk%4].
/// Plus the per-output-channel symmetric scales and the precomputed
/// row-offset correction term used by the dequant epilogue.
struct Int8Pack {
  int64_t k = 0;         // logical depth (input features)
  int64_t n = 0;         // logical output features
  int64_t k_padded = 0;  // k rounded up to kInt8KChunk
  int64_t n_padded = 0;  // n rounded up to kInt8ColGroup
  std::vector<int8_t> data;       // interleaved tiles, see above
  std::vector<float> scale;       // [n] per-output-channel scale s_w
  std::vector<float> offset_dot;  // [n] s_w[j] * sum_k q[k, j]
};

/// bf16 weight storage: B[k, n] row-major with each float32 rounded to
/// bfloat16 (round-to-nearest-even). Half the bytes of the float32 operand;
/// widened back to exact float32 panels inside the GEMM.
struct Bf16Pack {
  int64_t k = 0;
  int64_t n = 0;
  std::vector<uint16_t> data;  // [k, n] row-major bf16
};

/// float32 -> bf16 with round-to-nearest-even (the top 16 bits of the float,
/// rounded). NaN payloads collapse to a canonical quiet NaN.
inline uint16_t Bf16FromFloat(float x) {
  uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0) {
    return 0x7FC0;  // quiet NaN
  }
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

/// bf16 -> float32 (exact: bf16 is a prefix of the float32 encoding).
inline float FloatFromBf16(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// True when the int8 GEMM dispatches to a SIMD dot-product kernel (AVX2
/// maddubs or VNNI vpdpbusd) instead of the portable scalar reference. The
/// perf_microbench speedup guardrail gates on this.
bool Int8GemmAccelerated();

/// Per-output-channel symmetric weight quantization: for each column j of
/// B[k, n], scale[j] = maxabs(B[:, j]) / 127 and q = round(B / scale[j])
/// clamped to [-127, 127] (round-to-nearest-even; -128 is never produced, so
/// maddubs pair sums cannot saturate). An all-zero column gets scale 0 and
/// all-zero codes.
void QuantizeWeightsInt8(int64_t k, int64_t n, const float* b, int8_t* q,
                         float* scale);

/// Builds the packed GEMM operand from the [k, n] int8 codes + scales (the
/// checkpoint payload): interleaves into the tiled layout and precomputes the
/// offset-correction dot products.
Int8Pack PackInt8Weights(int64_t k, int64_t n, const int8_t* q,
                         const float* scale);

/// Rounds a float32 weight matrix to bf16 storage.
Bf16Pack PackBf16Weights(int64_t k, int64_t n, const float* b);

/// Dynamic per-row activation quantization to unsigned 7-bit affine codes:
/// for each row i of A[m, k], row_min[i] = min(row), row_scale[i] =
/// (max - min) / 127, q = round((x - min) / row_scale) in [0, 127]
/// (round-to-nearest-even). q is written [m, k_padded] with the k padding
/// zero-filled. 7-bit codes keep every maddubs pair sum inside int16 range.
/// A constant row gets row_scale 0 and all-zero codes; the dequant offset
/// term reconstructs it exactly up to weight quantization.
void QuantizeActivationRows(int64_t m, int64_t k, int64_t k_padded,
                            const float* a, uint8_t* q, float* row_scale,
                            float* row_min);

/// acc[m, n_padded] = qa[m, k_padded] . b (exact int32 dot products;
/// overwrites acc, including the zero padding columns). Serial /
/// row-partitioned-threaded / portable-scalar variants, all bitwise
/// identical.
void Int8GemmI32Serial(int64_t m, const Int8Pack& b, const uint8_t* qa,
                       int32_t* acc);
void Int8GemmI32(int64_t m, const Int8Pack& b, const uint8_t* qa,
                 int32_t* acc);
void Int8GemmI32Reference(int64_t m, const Int8Pack& b, const uint8_t* qa,
                          int32_t* acc);

/// Dequantize + bias (+ optional exact GELU), the epilogue fused against the
/// int8 GEMM (acc rows are n_padded wide; c rows are the logical n):
///   c[i, j] = fmaf(acc[i, j], row_scale[i] * b.scale[j],
///                  fmaf(row_min[i], b.offset_dot[j], bias[j]))
/// with GeluScalar applied afterwards when `gelu` is set. One fixed
/// per-element expression — deterministic for any partition.
void DequantBiasRows(int64_t m, const Int8Pack& b, const int32_t* acc,
                     const float* row_scale, const float* row_min,
                     const float* bias, bool gelu, float* c);

/// C[m, n] += A[m, k] * widen(b): the bf16 storage GEMM. Widens B panels to
/// exact float32 scratch and runs the same strip kernels as GemmAcc, so the
/// result equals the float GEMM over the rounded weights bit-for-bit and is
/// thread-count invariant.
void Bf16GemmAccSerial(int64_t m, const Bf16Pack& b, const float* a, float* c);
void Bf16GemmAcc(int64_t m, const Bf16Pack& b, const float* a, float* c);

// ---- Shared scalar/row forward primitives (DESIGN §6f) ---------------------
//
// The exact per-element arithmetic of the forward-only ops that both the
// eager path (tensor/ops.cc) and the compiled static-graph executor
// (src/graph) run. Keeping one definition here is what makes a compiled plan
// bitwise-identical to the eager forward *by construction*: both sides
// compile the same inline code. All helpers are allocation-free and write
// only through their output pointers, so they are safe inside ParallelRanges
// partitions and inside the executor's preallocated arena alike.

/// Exact GELU of one element: 0.5 x (1 + erf(x / sqrt(2))).
inline float GeluScalar(float x) {
  constexpr float kInvSqrt2 = 0.70710678118654752f;
  return 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
}

/// Softmax over one row of n elements (max-shifted, double accumulator).
inline void SoftmaxRow(const float* x, int64_t n, float* y) {
  float mx = x[0];
  for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
  double z = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    y[j] = std::exp(x[j] - mx);
    z += y[j];
  }
  const float invz = static_cast<float>(1.0 / z);
  for (int64_t j = 0; j < n; ++j) y[j] *= invz;
}

/// Key-padding-masked softmax over one row: entries with m[j] == 0 get
/// probability exactly 0; a fully masked row is defined as all-zero.
inline void MaskedSoftmaxRow(const float* x, const float* m, int64_t n,
                             float* y) {
  float mx = -std::numeric_limits<float>::infinity();
  for (int64_t j = 0; j < n; ++j) {
    if (m[j] != 0.0f) mx = std::max(mx, x[j]);
  }
  if (mx == -std::numeric_limits<float>::infinity()) {
    for (int64_t j = 0; j < n; ++j) y[j] = 0.0f;
    return;
  }
  double z = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    if (m[j] != 0.0f) {
      y[j] = std::exp(x[j] - mx);
      z += y[j];
    } else {
      y[j] = 0.0f;
    }
  }
  const float invz = static_cast<float>(1.0 / z);
  for (int64_t j = 0; j < n; ++j) y[j] *= invz;
}

/// Layer normalization of one row with affine gamma/beta (double-precision
/// mean/variance, matching LayerNormOp). When non-null, `xhat` receives the
/// normalized row and `inv_std` the reciprocal standard deviation — the
/// per-row statistics the eager backward pass caches; the executor passes
/// nullptr.
inline void LayerNormRow(const float* x, const float* gamma, const float* beta,
                         int64_t n, float eps, float* out, float* xhat,
                         float* inv_std) {
  double mu = 0.0;
  for (int64_t j = 0; j < n; ++j) mu += x[j];
  mu /= n;
  double var = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const double d = x[j] - mu;
    var += d * d;
  }
  var /= n;
  const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
  if (inv_std != nullptr) *inv_std = istd;
  for (int64_t j = 0; j < n; ++j) {
    const float xh = (x[j] - static_cast<float>(mu)) * istd;
    if (xhat != nullptr) xhat[j] = xh;
    out[j] = xh * gamma[j] + beta[j];
  }
}

// ---- Fused elementwise chains (static-graph compile targets) ---------------
//
// Each fusion only removes intermediate buffer stores; every element still
// goes through the identical float operation sequence, and a float round-trip
// through memory is lossless, so fused results equal the unfused eager ops
// bit-for-bit (DESIGN §6f).

/// rows x n bias broadcast: y[i, j] = x[i, j] + bias[j] (Linear bias add).
inline void BiasAddRows(const float* x, const float* bias, int64_t rows,
                        int64_t n, float* y) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    for (int64_t j = 0; j < n; ++j) yr[j] = xr[j] + bias[j];
  }
}

/// Fused Linear bias + GELU: y[i, j] = GeluScalar(x[i, j] + bias[j]).
inline void BiasGeluRows(const float* x, const float* bias, int64_t rows,
                         int64_t n, float* y) {
  for (int64_t i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    for (int64_t j = 0; j < n; ++j) yr[j] = GeluScalar(xr[j] + bias[j]);
  }
}

/// Fused residual-add + LayerNorm prologue: out row = LN(x + r). The sum is
/// recomputed in each of the three passes instead of being staged in a
/// scratch buffer; float addition is deterministic, so all three passes see
/// identical values.
inline void ResidualLayerNormRow(const float* x, const float* r,
                                 const float* gamma, const float* beta,
                                 int64_t n, float eps, float* out) {
  double mu = 0.0;
  for (int64_t j = 0; j < n; ++j) mu += x[j] + r[j];
  mu /= n;
  double var = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    const double d = (x[j] + r[j]) - mu;
    var += d * d;
  }
  var /= n;
  const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
  for (int64_t j = 0; j < n; ++j) {
    const float xh = ((x[j] + r[j]) - static_cast<float>(mu)) * istd;
    out[j] = xh * gamma[j] + beta[j];
  }
}

/// Fused scale-projection epilogue (Eq. 18): out[i] = (raw[i] + s) * vn[i].
inline void AddScalarMul(const float* raw, float s, const float* vn, int64_t n,
                         float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = (raw[i] + s) * vn[i];
}

/// Fused affine-transfer epilogue (Eq. 16): out = (a + b) + c elementwise,
/// in the eager Add(Add(a, b), c) association order.
inline void Add3(const float* a, const float* b, const float* c, int64_t n,
                 float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = (a[i] + b[i]) + c[i];
}

}  // namespace kernels
}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_KERNELS_H_
