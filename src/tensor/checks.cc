#include "tensor/checks.h"

#include <atomic>
#include <cstdlib>

#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"

namespace chainsformer {
namespace tensor {

namespace {

std::atomic<int> g_check_mode{static_cast<int>(CheckMode::kOff)};

}  // namespace

void SetCheckMode(CheckMode mode) {
  g_check_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

CheckMode GetCheckMode() {
  return static_cast<CheckMode>(g_check_mode.load(std::memory_order_relaxed));
}

const char* CheckModeName(CheckMode mode) {
  switch (mode) {
    case CheckMode::kOff:
      return "off";
    case CheckMode::kShapes:
      return "shapes";
    case CheckMode::kFull:
      return "full";
  }
  return "off";
}

CheckMode CheckModeFromString(const std::string& name) {
  if (name == "off") return CheckMode::kOff;
  if (name == "shapes") return CheckMode::kShapes;
  if (name == "full") return CheckMode::kFull;
  CF_LOG(Fatal) << "unknown check mode \"" << name
                << "\" (expected off, shapes or full)";
  return CheckMode::kOff;
}

CheckMode CheckModeFromEnv() {
  const char* env = std::getenv("CF_CHECK_MODE");
  if (env == nullptr || env[0] == '\0') return CheckMode::kOff;
  return CheckModeFromString(env);
}

void DebugAssertFinite(const char* where, const Tensor& t) {
  if (GetCheckMode() != CheckMode::kFull || !t.defined()) return;
  const auto& d = t.data();
  const int64_t bad =
      kernels::CountNonFinite(d.data(), static_cast<int64_t>(d.size()));
  if (bad == 0) return;
  metrics::MetricsRegistry::Global()
      .GetCounter(metrics::names::kTapePoisonEvents)
      ->Increment();
  CF_LOG(Fatal) << "numeric poison: " << where << " received " << bad
                << " non-finite value(s) in input " << t.DebugString();
}

int DebugCheckRootsReceivedGrad(const std::vector<Tensor>& roots) {
  if (!CheckModeEnabled()) return 0;
  int leaked = 0;
  for (const Tensor& root : roots) {
    if (!root.defined() || !root.requires_grad()) continue;
    const auto& g = root.impl()->grad;
    bool any_nonzero = false;
    for (float v : g) {
      if (v != 0.0f) {
        any_nonzero = true;
        break;
      }
    }
    if (g.empty() || !any_nonzero) ++leaked;
  }
  if (leaked > 0) {
    metrics::MetricsRegistry::Global()
        .GetCounter(metrics::names::kTapeLeakedRoots)
        ->Increment(leaked);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      CF_LOG(Warning)
          << "tape sanitizer: " << leaked << " of " << roots.size()
          << " requires_grad roots never received a gradient this step "
          << "(counted in tape.leaked_roots; reported once per process)";
    }
  }
  return leaked;
}

}  // namespace tensor
}  // namespace chainsformer
