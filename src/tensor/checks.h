#ifndef CHAINSFORMER_TENSOR_CHECKS_H_
#define CHAINSFORMER_TENSOR_CHECKS_H_

#include <string>
#include <vector>

namespace chainsformer {
namespace tensor {

class Tensor;

/// Correctness-analysis level of the autograd tape sanitizer. The levels are
/// strictly cumulative:
///
///   kOff    — no checking beyond the always-on CF_CHECK shape preconditions.
///             Recording and Backward() are bitwise identical to a build
///             without the sanitizer; the per-op cost is one relaxed atomic
///             load and a branch.
///   kShapes — structural tape checks. Every recorded op snapshots the
///             version counter of each input; Backward() fails with the op
///             name and a tape backtrace if a saved input was mutated after
///             recording, if a freed tape is backpropagated again
///             (double-backward / use-after-backward), or if a gradient
///             buffer's shape diverges from its tensor at an accumulation
///             site. (All tensors are float32, so dtype mismatches reduce to
///             size mismatches.)
///   kFull   — kShapes plus numeric poison tracking: every op forward scans
///             its output for NaN/Inf and reports the *first* poisoned op
///             together with per-input statistics, and leaked
///             requires_grad roots (roots that never receive gradients) are
///             counted and logged after Backward().
///
/// Violations abort through CF_LOG(Fatal) after incrementing the matching
/// metrics counter (`tape.version_violations`, `tape.poison_events`,
/// `tape.leaked_roots` — the last one warns instead of aborting).
enum class CheckMode { kOff = 0, kShapes = 1, kFull = 2 };

/// Process-wide sanitizer level. Like SetKernelThreads, this is meant to be
/// configured at startup / model construction, not mid-training-step; reads
/// on the op hot path are relaxed atomics.
void SetCheckMode(CheckMode mode);
CheckMode GetCheckMode();

/// True when any sanitizer level is active (mode != kOff).
inline bool CheckModeEnabled() { return GetCheckMode() != CheckMode::kOff; }

/// "off" / "shapes" / "full".
const char* CheckModeName(CheckMode mode);

/// Parses "off" / "shapes" / "full" (the CLI --check-mode values). Fatal on
/// any other string, naming the accepted values.
CheckMode CheckModeFromString(const std::string& name);

/// Reads the CF_CHECK_MODE environment variable; returns kOff when unset or
/// empty, otherwise parses it with CheckModeFromString.
CheckMode CheckModeFromEnv();

/// In kFull mode, aborts (naming `where`) if `t` contains NaN/Inf; no-op at
/// lower levels. Entry points with known numeric hazards — the Poincaré
/// artanh/Möbius clamp sites — call this so a poisoned *input* is blamed on
/// the hyperbolic op that received it rather than on the first primitive op
/// inside its expansion.
void DebugAssertFinite(const char* where, const Tensor& t);

/// In kShapes/kFull mode, checks that every root in `roots` (typically the
/// trainable parameters of the step that just ran Backward()) has a
/// non-empty, not-all-zero gradient buffer. Roots that never received a
/// gradient are counted in `tape.leaked_roots` and reported with a
/// CF_LOG(Warning) (once per process, to keep training logs readable).
/// Returns the number of leaked roots found. No-op (returns 0) in kOff.
int DebugCheckRootsReceivedGrad(const std::vector<Tensor>& roots);

/// RAII override of the process-wide check mode, restoring the previous
/// level on destruction. Test and bench scaffolding.
class CheckModeGuard {
 public:
  explicit CheckModeGuard(CheckMode mode) : prev_(GetCheckMode()) {
    SetCheckMode(mode);
  }
  ~CheckModeGuard() { SetCheckMode(prev_); }
  CheckModeGuard(const CheckModeGuard&) = delete;
  CheckModeGuard& operator=(const CheckModeGuard&) = delete;

 private:
  CheckMode prev_;
};

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_CHECKS_H_
