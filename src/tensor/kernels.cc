#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define CF_GEMM_X86 1
#include <immintrin.h>
#endif

#include "util/metric_names.h"
#include "util/sync.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chainsformer {
namespace tensor {
namespace kernels {
namespace {

// Cache blocking: a packed B panel is kKC x kNC floats (128 KiB), sized to
// stay L2-resident while it is streamed over a strip of A rows; the four
// C-row accumulators of a strip (4 x kNC floats) stay in L1.
constexpr int64_t kNC = 256;
constexpr int64_t kKC = 128;

// Minimum multiply-accumulate count per worker task. Below twice this total
// the whole kernel runs inline on the calling thread, so the small matrices
// that dominate chain encoding at d=32 never pay dispatch overhead.
constexpr int64_t kGrainWork = 1 << 18;

cf::Mutex g_pool_mu{"kernels.pool_config"};
int g_threads CF_GUARDED_BY(g_pool_mu) = 1;
std::unique_ptr<ThreadPool> g_pool CF_GUARDED_BY(g_pool_mu);

ThreadPool* Pool() {
  cf::MutexLock lock(g_pool_mu);
  if (!g_pool || g_pool->num_threads() != static_cast<size_t>(g_threads)) {
    g_pool = std::make_unique<ThreadPool>(static_cast<size_t>(g_threads));
  }
  return g_pool.get();
}

// Scalar strip kernel: C[i0:i1, jc:jc+nc] += A[i0:i1, pc:pc+kc] * panel.
// Four C-row accumulators walk the packed panel with a fixed (kk, j) order.
void StripScalar(int64_t i0, int64_t i1, int64_t k, int64_t n, int64_t pc,
                 int64_t jc, int64_t kc, int64_t nc, const float* a,
                 const float* pb, float* c) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* __restrict a0 = a + (i + 0) * k + pc;
    const float* __restrict a1 = a + (i + 1) * k + pc;
    const float* __restrict a2 = a + (i + 2) * k + pc;
    const float* __restrict a3 = a + (i + 3) * k + pc;
    float* __restrict c0 = c + (i + 0) * n + jc;
    float* __restrict c1 = c + (i + 1) * n + jc;
    float* __restrict c2 = c + (i + 2) * n + jc;
    float* __restrict c3 = c + (i + 3) * n + jc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* __restrict bp = pb + kk * nc;
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      for (int64_t j = 0; j < nc; ++j) {
        c0[j] += av0 * bp[j];
        c1[j] += av1 * bp[j];
        c2[j] += av2 * bp[j];
        c3[j] += av3 * bp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    const float* __restrict ar = a + i * k + pc;
    float* __restrict cr = c + i * n + jc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* __restrict bp = pb + kk * nc;
      const float av = ar[kk];
      for (int64_t j = 0; j < nc; ++j) cr[j] += av * bp[j];
    }
  }
}

#ifdef CF_GEMM_X86
bool HasAvx2Fma() {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}

// AVX2 + FMA register-blocked strip kernel (6-row x 16-column tiles, plus
// 8-wide, 4-wide, and scalar-fmaf tails). Every C element is produced by the same
// arithmetic regardless of which tile or tail it falls into: a zeroed
// accumulator, one fused multiply-add per kk in ascending order, then a
// single add into C per panel. fmaf() rounds exactly like one _mm256_fmadd
// lane, so results are invariant to the strip decomposition (threads) and
// to the row count m (a batched GEMM row equals the same row of a smaller
// per-sequence GEMM bit-for-bit).
__attribute__((target("avx2,fma"))) void StripAvx2(
    int64_t i0, int64_t i1, int64_t k, int64_t n, int64_t pc, int64_t jc,
    int64_t kc, int64_t nc, const float* a, const float* pb, float* c) {
  int64_t i = i0;
  for (; i + 6 <= i1; i += 6) {
    int64_t j = 0;
    for (; j + 16 <= nc; j += 16) {
      __m256 acc[12];
      for (auto& v : acc) v = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* __restrict bp = pb + kk * nc + j;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        for (int r = 0; r < 6; ++r) {
          const __m256 av = _mm256_set1_ps(a[(i + r) * k + pc + kk]);
          acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
          acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
        }
      }
      for (int r = 0; r < 6; ++r) {
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc[2 * r]));
        _mm256_storeu_ps(
            cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc[2 * r + 1]));
      }
    }
    for (; j + 8 <= nc; j += 8) {
      for (int r = 0; r < 6; ++r) {
        __m256 acc = _mm256_setzero_ps();
        const float* __restrict ar = a + (i + r) * k + pc;
        for (int64_t kk = 0; kk < kc; ++kk) {
          acc = _mm256_fmadd_ps(_mm256_set1_ps(ar[kk]),
                                _mm256_loadu_ps(pb + kk * nc + j), acc);
        }
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc));
      }
    }
    // Tail tiles interleave the six independent row chains inside one kk
    // loop so the FMA latency of one row hides behind the other five; each
    // row's own chain is unchanged, so results stay bit-identical.
    for (; j + 4 <= nc; j += 4) {
      __m128 acc[6];
      for (auto& v : acc) v = _mm_setzero_ps();
      for (int64_t kk = 0; kk < kc; ++kk) {
        const __m128 bv = _mm_loadu_ps(pb + kk * nc + j);
        for (int r = 0; r < 6; ++r) {
          acc[r] = _mm_fmadd_ps(_mm_set1_ps(a[(i + r) * k + pc + kk]), bv,
                                acc[r]);
        }
      }
      for (int r = 0; r < 6; ++r) {
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm_storeu_ps(cr, _mm_add_ps(_mm_loadu_ps(cr), acc[r]));
      }
    }
    for (; j < nc; ++j) {
      float acc[6] = {};
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float bv = pb[kk * nc + j];
        for (int r = 0; r < 6; ++r) {
          acc[r] = std::fmaf(a[(i + r) * k + pc + kk], bv, acc[r]);
        }
      }
      for (int r = 0; r < 6; ++r) c[(i + r) * n + jc + j] += acc[r];
    }
  }
  for (; i < i1; ++i) {
    int64_t j = 0;
    for (; j + 16 <= nc; j += 16) {
      __m256 lo = _mm256_setzero_ps();
      __m256 hi = _mm256_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        const __m256 av = _mm256_set1_ps(ar[kk]);
        const float* __restrict bp = pb + kk * nc + j;
        lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), lo);
        hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), hi);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), lo));
      _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), hi));
    }
    for (; j + 8 <= nc; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(ar[kk]),
                              _mm256_loadu_ps(pb + kk * nc + j), acc);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc));
    }
    for (; j + 4 <= nc; j += 4) {
      __m128 acc = _mm_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = _mm_fmadd_ps(_mm_set1_ps(ar[kk]),
                           _mm_loadu_ps(pb + kk * nc + j), acc);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm_storeu_ps(cr, _mm_add_ps(_mm_loadu_ps(cr), acc));
    }
    for (; j < nc; ++j) {
      float acc = 0.0f;
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = std::fmaf(ar[kk], pb[kk * nc + j], acc);
      }
      c[i * n + jc + j] += acc;
    }
  }
}
#endif  // CF_GEMM_X86

// C[i0:i1, :] += A[i0:i1, :] * B for row-major A[.,k], B[k,n], C[.,n].
// Blocked loops over (jc, pc) with B packed per panel; within one build,
// every row's accumulation order is fixed and independent of the strip
// decomposition, which is what makes threaded output bitwise equal to
// single-threaded output — and batched rows bitwise equal to the same rows
// of a smaller GEMM. The compute strip dispatches to the AVX2+FMA
// microkernel when the CPU supports it, with the portable scalar strip as
// the fallback.
void GemmCoreRows(int64_t i0, int64_t i1, int64_t k, int64_t n, const float* a,
                  const float* b, float* c) {
  thread_local std::vector<float> pack;
#ifdef CF_GEMM_X86
  const bool avx2 = HasAvx2Fma();
#endif
  // When n fits in one column block the B panel's natural row stride already
  // equals the packed stride (nc == n), so the strips can read B in place
  // and the packing copy is skipped. Same values, same order — bit-identical.
  const bool pack_needed = n > kNC;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const float* pb = b + pc * n + jc;
      if (pack_needed) {
        pack.resize(static_cast<size_t>(kc * nc));
        float* dst = pack.data();
        for (int64_t kk = 0; kk < kc; ++kk) {
          const float* src = b + (pc + kk) * n + jc;
          std::copy(src, src + nc, dst + kk * nc);
        }
        pb = dst;
      }
#ifdef CF_GEMM_X86
      if (avx2) {
        StripAvx2(i0, i1, k, n, pc, jc, kc, nc, a, pb, c);
        continue;
      }
#endif
      StripScalar(i0, i1, k, n, pc, jc, kc, nc, a, pb, c);
    }
  }
}

// ---- Reduced-precision cores (DESIGN §6g) ----------------------------------

// Scalar int8 dot-product core over rows [i0, i1) of the interleaved tiled
// layout ([np/8][kp/4][8 cols][4 k]): exact int32 accumulation, so the SIMD
// variants below (AVX2 maddubs, VNNI vpdpbusd) produce bitwise-identical
// results.
void Int8RowsScalar(int64_t i0, int64_t i1, int64_t kp, int64_t np,
                    const int8_t* bt, const uint8_t* qa, int32_t* acc) {
  const int64_t kq = kp / kInt8KChunk;
  for (int64_t i = i0; i < i1; ++i) {
    const uint8_t* __restrict ar = qa + i * kp;
    int32_t* __restrict cr = acc + i * np;
    for (int64_t g = 0; g < np / kInt8ColGroup; ++g) {
      const int8_t* __restrict bg = bt + g * kq * 32;
      for (int64_t jl = 0; jl < kInt8ColGroup; ++jl) {
        int32_t s = 0;
        for (int64_t kk = 0; kk < kp; ++kk) {
          s += static_cast<int32_t>(ar[kk]) *
               static_cast<int32_t>(bg[(kk / 4) * 32 + jl * 4 + (kk % 4)]);
        }
        cr[g * kInt8ColGroup + jl] = s;
      }
    }
  }
}

#ifdef CF_GEMM_X86
// Broadcast 4 consecutive activation codes into every 32-bit lane; pairs with
// one 32-byte weight tile ([8 cols][4 k]) so a single dot step advances 8
// output columns by 4 depth values — accumulators ARE the output, no
// horizontal reductions.
__attribute__((target("avx2"))) inline __m256i BroadcastA4(const uint8_t* p) {
  int32_t w;
  std::memcpy(&w, p, sizeof(w));
  return _mm256_set1_epi32(w);
}

// AVX2 int8 dot core: vpmaddubsw (u8 x s8 -> pairwise s16 sums; activations
// are 7-bit and weights avoid -128, so the pair sums cannot saturate) widened
// via vpmaddwd against ones. 4-row x 16-column register blocks; the row tail
// runs the same tile loop one row at a time; there is no column tail (n is
// padded to the group width).
__attribute__((target("avx2"))) void Int8RowsAvx2(int64_t i0, int64_t i1,
                                                  int64_t kp, int64_t np,
                                                  const int8_t* bt,
                                                  const uint8_t* qa,
                                                  int32_t* acc) {
  const __m256i ones = _mm256_set1_epi16(1);
  const int64_t kq = kp / kInt8KChunk;
  const int64_t ngroups = np / kInt8ColGroup;
  int64_t g = 0;
  for (; g + 2 <= ngroups; g += 2) {
    const int8_t* __restrict b0p = bt + (g + 0) * kq * 32;
    const int8_t* __restrict b1p = bt + (g + 1) * kq * 32;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      __m256i s[8];
      for (auto& v : s) v = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b0p + q * 32));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b1p + q * 32));
        for (int r = 0; r < 4; ++r) {
          const __m256i av = BroadcastA4(qa + (i + r) * kp + q * 4);
          s[2 * r] = _mm256_add_epi32(
              s[2 * r], _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
          s[2 * r + 1] = _mm256_add_epi32(
              s[2 * r + 1],
              _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
        }
      }
      for (int r = 0; r < 4; ++r) {
        int32_t* __restrict cr = acc + (i + r) * np + g * kInt8ColGroup;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), s[2 * r]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), s[2 * r + 1]);
      }
    }
    for (; i < i1; ++i) {
      __m256i s0 = _mm256_setzero_si256();
      __m256i s1 = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i av = BroadcastA4(qa + i * kp + q * 4);
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b0p + q * 32));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b1p + q * 32));
        s0 = _mm256_add_epi32(
            s0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        s1 = _mm256_add_epi32(
            s1, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
      }
      int32_t* __restrict cr = acc + i * np + g * kInt8ColGroup;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), s0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), s1);
    }
  }
  if (g < ngroups) {
    const int8_t* __restrict bp = bt + g * kq * 32;
    for (int64_t i = i0; i < i1; ++i) {
      __m256i s0 = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i av = BroadcastA4(qa + i * kp + q * 4);
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bp + q * 32));
        s0 = _mm256_add_epi32(
            s0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
      }
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(acc + i * np + g * kInt8ColGroup), s0);
    }
  }
}

// VNNI int8 dot core: one vpdpbusd per (8 columns x 4 depth) tile, same
// blocking and exact int32 arithmetic as the AVX2 core.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
Int8RowsVnni(int64_t i0, int64_t i1, int64_t kp, int64_t np, const int8_t* bt,
             const uint8_t* qa, int32_t* acc) {
  const int64_t kq = kp / kInt8KChunk;
  const int64_t ngroups = np / kInt8ColGroup;
  int64_t g = 0;
  for (; g + 2 <= ngroups; g += 2) {
    const int8_t* __restrict b0p = bt + (g + 0) * kq * 32;
    const int8_t* __restrict b1p = bt + (g + 1) * kq * 32;
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      __m256i s[8];
      for (auto& v : s) v = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b0p + q * 32));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b1p + q * 32));
        for (int r = 0; r < 4; ++r) {
          const __m256i av = BroadcastA4(qa + (i + r) * kp + q * 4);
          s[2 * r] = _mm256_dpbusd_epi32(s[2 * r], av, b0);
          s[2 * r + 1] = _mm256_dpbusd_epi32(s[2 * r + 1], av, b1);
        }
      }
      for (int r = 0; r < 4; ++r) {
        int32_t* __restrict cr = acc + (i + r) * np + g * kInt8ColGroup;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), s[2 * r]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), s[2 * r + 1]);
      }
    }
    for (; i < i1; ++i) {
      __m256i s0 = _mm256_setzero_si256();
      __m256i s1 = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i av = BroadcastA4(qa + i * kp + q * 4);
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b0p + q * 32));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b1p + q * 32));
        s0 = _mm256_dpbusd_epi32(s0, av, b0);
        s1 = _mm256_dpbusd_epi32(s1, av, b1);
      }
      int32_t* __restrict cr = acc + i * np + g * kInt8ColGroup;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr), s0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cr + 8), s1);
    }
  }
  if (g < ngroups) {
    const int8_t* __restrict bp = bt + g * kq * 32;
    for (int64_t i = i0; i < i1; ++i) {
      __m256i s0 = _mm256_setzero_si256();
      for (int64_t q = 0; q < kq; ++q) {
        const __m256i av = BroadcastA4(qa + i * kp + q * 4);
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bp + q * 32));
        s0 = _mm256_dpbusd_epi32(s0, av, bv);
      }
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(acc + i * np + g * kInt8ColGroup), s0);
    }
  }
}

bool HasVnni() {
  static const bool has = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512bw") &&
                          __builtin_cpu_supports("avx512vl") &&
                          __builtin_cpu_supports("avx512vnni");
  return has;
}

// AVX2 row min/max: comparisons only, so the lane order cannot change the
// result — bitwise identical to the scalar reduction. Returns the number of
// leading elements consumed; the caller folds the tail in scalar.
__attribute__((target("avx2"))) int64_t MinMaxRowAvx2(const float* x,
                                                      int64_t k, float* mn_out,
                                                      float* mx_out) {
  if (k < 16) return 0;
  __m256 mn0 = _mm256_loadu_ps(x);
  __m256 mx0 = mn0;
  __m256 mn1 = _mm256_loadu_ps(x + 8);
  __m256 mx1 = mn1;
  int64_t kk = 16;
  for (; kk + 16 <= k; kk += 16) {
    const __m256 v0 = _mm256_loadu_ps(x + kk);
    const __m256 v1 = _mm256_loadu_ps(x + kk + 8);
    mn0 = _mm256_min_ps(mn0, v0);
    mx0 = _mm256_max_ps(mx0, v0);
    mn1 = _mm256_min_ps(mn1, v1);
    mx1 = _mm256_max_ps(mx1, v1);
  }
  for (; kk + 8 <= k; kk += 8) {
    const __m256 v0 = _mm256_loadu_ps(x + kk);
    mn0 = _mm256_min_ps(mn0, v0);
    mx0 = _mm256_max_ps(mx0, v0);
  }
  mn0 = _mm256_min_ps(mn0, mn1);
  mx0 = _mm256_max_ps(mx0, mx1);
  __m128 n = _mm_min_ps(_mm256_castps256_ps128(mn0),
                        _mm256_extractf128_ps(mn0, 1));
  n = _mm_min_ps(n, _mm_movehl_ps(n, n));
  n = _mm_min_ss(n, _mm_shuffle_ps(n, n, 1));
  __m128 xx = _mm_max_ps(_mm256_castps256_ps128(mx0),
                         _mm256_extractf128_ps(mx0, 1));
  xx = _mm_max_ps(xx, _mm_movehl_ps(xx, xx));
  xx = _mm_max_ss(xx, _mm_shuffle_ps(xx, xx, 1));
  *mn_out = _mm_cvtss_f32(n);
  *mx_out = _mm_cvtss_f32(xx);
  return kk;
}

// AVX2 activation-row quantization inner loop: 8 codes per iteration via
// cvtps (round-to-nearest-even, exactly like the scalar lrintf), clamped to
// [0, 127] before the lossless narrowing packs.
__attribute__((target("avx2"))) int64_t QuantizeRowAvx2(const float* x,
                                                        int64_t k, float mn,
                                                        float inv,
                                                        uint8_t* q) {
  const __m256 vmn = _mm256_set1_ps(mn);
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(127);
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    const __m256 v = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + kk), vmn), vinv);
    __m256i r = _mm256_cvtps_epi32(v);
    r = _mm256_min_epi32(_mm256_max_epi32(r, lo), hi);
    const __m128i a = _mm256_castsi256_si128(r);
    const __m128i b = _mm256_extracti128_si256(r, 1);
    const __m128i s16 = _mm_packs_epi32(a, b);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + kk),
                     _mm_packus_epi16(s16, s16));
  }
  return kk;
}

// AVX2 dequant epilogue: the same fmaf(acc, sa*sw, fmaf(mn, od, bias))
// expression as the scalar tail, eight elements at a time.
__attribute__((target("avx2,fma"))) int64_t DequantRowAvx2(
    const int32_t* acc, float sa, float mn, const float* sw, const float* od,
    const float* bias, int64_t n, float* c) {
  const __m256 vsa = _mm256_set1_ps(sa);
  const __m256 vmn = _mm256_set1_ps(mn);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 a = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
    const __m256 off = _mm256_fmadd_ps(vmn, _mm256_loadu_ps(od + j),
                                       _mm256_loadu_ps(bias + j));
    const __m256 v = _mm256_fmadd_ps(
        a, _mm256_mul_ps(vsa, _mm256_loadu_ps(sw + j)), off);
    _mm256_storeu_ps(c + j, v);
  }
  return j;
}
#endif  // CF_GEMM_X86

void Int8CoreRows(int64_t i0, int64_t i1, const Int8Pack& b, const uint8_t* qa,
                  int32_t* acc) {
#ifdef CF_GEMM_X86
  if (HasVnni()) {
    Int8RowsVnni(i0, i1, b.k_padded, b.n_padded, b.data.data(), qa, acc);
    return;
  }
  if (HasAvx2Fma()) {
    Int8RowsAvx2(i0, i1, b.k_padded, b.n_padded, b.data.data(), qa, acc);
    return;
  }
#endif
  Int8RowsScalar(i0, i1, b.k_padded, b.n_padded, b.data.data(), qa, acc);
}

// bf16 GEMM core: widens one kKC x kNC weight panel to exact float32 scratch
// and runs the float strip kernels over it — same blocked structure as
// GemmCoreRows, same per-row accumulation order, so the result is invariant
// to the row partition (threads).
void Bf16CoreRows(int64_t i0, int64_t i1, int64_t k, int64_t n, const float* a,
                  const uint16_t* b, float* c) {
  thread_local std::vector<float> panel;
#ifdef CF_GEMM_X86
  const bool avx2 = HasAvx2Fma();
#endif
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      panel.resize(static_cast<size_t>(kc * nc));
      float* dst = panel.data();
      for (int64_t kk = 0; kk < kc; ++kk) {
        const uint16_t* src = b + (pc + kk) * n + jc;
        for (int64_t j = 0; j < nc; ++j) {
          dst[kk * nc + j] = FloatFromBf16(src[j]);
        }
      }
#ifdef CF_GEMM_X86
      if (avx2) {
        StripAvx2(i0, i1, k, n, pc, jc, kc, nc, a, dst, c);
        continue;
      }
#endif
      StripScalar(i0, i1, k, n, pc, jc, kc, nc, a, dst, c);
    }
  }
}

// dst[cols, rows] = src[rows, cols]^T, blocked for cache locality.
void TransposeInto(const float* src, int64_t rows, int64_t cols, float* dst) {
  constexpr int64_t kB = 32;
  for (int64_t i0 = 0; i0 < rows; i0 += kB) {
    const int64_t i1 = std::min(rows, i0 + kB);
    for (int64_t j0 = 0; j0 < cols; j0 += kB) {
      const int64_t j1 = std::min(cols, j0 + kB);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) dst[j * rows + i] = src[i * cols + j];
      }
    }
  }
}

}  // namespace

void SetKernelThreads(int n) {
  if (n <= 0) {
    n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  cf::MutexLock lock(g_pool_mu);
  g_threads = n;
}

int KernelThreads() {
  cf::MutexLock lock(g_pool_mu);
  return g_threads;
}

void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn) {
  // Dispatch-decision metrics for the kernel layer: how often a GEMM ran
  // inline vs. was sliced onto the pool, and how coarse the slices were.
  static auto* inline_dispatches =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsDispatchInline);
  static auto* pooled_dispatches =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsDispatchPooled);
  static auto* tasks_dispatched =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsTasksDispatched);
  static auto* rows_per_dispatch =
      metrics::MetricsRegistry::Global().GetHistogram(
          metrics::names::kKernelsRowsPerDispatch);
  if (n <= 0) return;
  const int64_t cost = std::max<int64_t>(cost_per_item, 1);
  const int threads = KernelThreads();
  const double total = static_cast<double>(n) * static_cast<double>(cost);
  if (threads <= 1 || total < 2.0 * static_cast<double>(kGrainWork)) {
    inline_dispatches->Increment();
    fn(0, n);
    return;
  }
  int64_t num_ranges = std::min<int64_t>(
      threads, static_cast<int64_t>(total / static_cast<double>(kGrainWork)));
  num_ranges = std::clamp<int64_t>(num_ranges, 1, n);
  if (num_ranges <= 1) {
    inline_dispatches->Increment();
    fn(0, n);
    return;
  }
  pooled_dispatches->Increment();
  tasks_dispatched->Increment(num_ranges);
  rows_per_dispatch->Observe(static_cast<double>(n));
  CF_TRACE_SCOPE("kernels.gemm_pooled");
  const size_t grain =
      static_cast<size_t>((n + num_ranges - 1) / num_ranges);
  Pool()->ParallelForRanges(
      static_cast<size_t>(n), grain, [&fn](size_t begin, size_t end) {
        fn(static_cast<int64_t>(begin), static_cast<int64_t>(end));
      });
}

int64_t CountNonFinite(const float* x, int64_t n) {
  std::atomic<int64_t> total{0};
  // A float is non-finite iff its exponent field is all ones; comparing the
  // masked bits keeps the inner loop branch-free (auto-vectorizable) and,
  // unlike std::isfinite, immune to -ffast-math surprises.
  ParallelRanges(n, 1, [&total, x](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &x[i], sizeof(bits));
      local += static_cast<int64_t>((bits & 0x7F800000u) == 0x7F800000u);
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

void GemmAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
             float* c) {
  ParallelRanges(m, k * n, [=](int64_t i0, int64_t i1) {
    GemmCoreRows(i0, i1, k, n, a, b, c);
  });
}

void GemmAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                   const float* b, float* c) {
  GemmCoreRows(0, m, k, n, a, b, c);
}

void GemmBtAcc(int64_t m, int64_t k, int64_t n, const float* g, const float* b,
               float* c) {
  // C[m,k] += G[m,n] * B[k,n]^T == G[m,n] * Bt[n,k] with Bt row-major, so
  // one explicit transpose turns both backward products into the forward
  // core (contiguous inner loops instead of strided column walks).
  std::vector<float> bt(static_cast<size_t>(n * k));
  TransposeInto(b, k, n, bt.data());
  const float* btp = bt.data();
  ParallelRanges(m, n * k, [=](int64_t i0, int64_t i1) {
    GemmCoreRows(i0, i1, n, k, g, btp, c);
  });
}

void GemmBtAccSerial(int64_t m, int64_t k, int64_t n, const float* g,
                     const float* b, float* c) {
  std::vector<float> bt(static_cast<size_t>(n * k));
  TransposeInto(b, k, n, bt.data());
  GemmCoreRows(0, m, n, k, g, bt.data(), c);
}

void GemmAtAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* g,
               float* c) {
  // C[k,n] += A[m,k]^T * G[m,n] == At[k,m] * G[m,n].
  std::vector<float> at(static_cast<size_t>(k * m));
  TransposeInto(a, m, k, at.data());
  const float* atp = at.data();
  ParallelRanges(k, m * n, [=](int64_t k0, int64_t k1) {
    GemmCoreRows(k0, k1, m, n, atp, g, c);
  });
}

void GemmAtAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                     const float* g, float* c) {
  std::vector<float> at(static_cast<size_t>(k * m));
  TransposeInto(a, m, k, at.data());
  GemmCoreRows(0, k, m, n, at.data(), g, c);
}

bool Int8GemmAccelerated() {
#ifdef CF_GEMM_X86
  return HasVnni() || HasAvx2Fma();
#else
  return false;
#endif
}

void QuantizeWeightsInt8(int64_t k, int64_t n, const float* b, int8_t* q,
                         float* scale) {
  for (int64_t j = 0; j < n; ++j) {
    float maxabs = 0.0f;
    for (int64_t i = 0; i < k; ++i) {
      maxabs = std::max(maxabs, std::fabs(b[i * n + j]));
    }
    // Codes stay in [-127, 127]: -128 never appears, so the u8 x s8 pair
    // sums in the AVX2 maddubs path cannot saturate int16.
    scale[j] = maxabs / 127.0f;
    const float inv = maxabs > 0.0f ? 127.0f / maxabs : 0.0f;
    for (int64_t i = 0; i < k; ++i) {
      const long r = lrintf(b[i * n + j] * inv);
      q[i * n + j] = static_cast<int8_t>(std::clamp<long>(r, -127, 127));
    }
  }
}

Int8Pack PackInt8Weights(int64_t k, int64_t n, const int8_t* q,
                         const float* scale) {
  Int8Pack pack;
  pack.k = k;
  pack.n = n;
  pack.k_padded = Int8PaddedDepth(k);
  pack.n_padded = Int8PaddedCols(n);
  const int64_t kq = pack.k_padded / kInt8KChunk;
  pack.data.assign(static_cast<size_t>((pack.n_padded / kInt8ColGroup) * kq) *
                       32,
                   0);
  pack.scale.assign(scale, scale + n);
  pack.offset_dot.resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) {
    int64_t col_sum = 0;
    int8_t* __restrict dst =
        pack.data.data() + (j / kInt8ColGroup) * kq * 32 + (j % kInt8ColGroup) * 4;
    for (int64_t i = 0; i < k; ++i) {
      dst[(i / 4) * 32 + (i % 4)] = q[i * n + j];
      col_sum += q[i * n + j];
    }
    // Row-offset correction term: min_i * scale[j] * sum_k qw[k][j] folds the
    // activation zero point into one fmaf per output element at dequant time.
    pack.offset_dot[static_cast<size_t>(j)] =
        pack.scale[static_cast<size_t>(j)] * static_cast<float>(col_sum);
  }
  return pack;
}

Bf16Pack PackBf16Weights(int64_t k, int64_t n, const float* b) {
  Bf16Pack pack;
  pack.k = k;
  pack.n = n;
  pack.data.resize(static_cast<size_t>(k * n));
  for (int64_t i = 0; i < k * n; ++i) pack.data[i] = Bf16FromFloat(b[i]);
  return pack;
}

void QuantizeActivationRows(int64_t m, int64_t k, int64_t k_padded,
                            const float* a, uint8_t* q, float* row_scale,
                            float* row_min) {
#ifdef CF_GEMM_X86
  const bool avx2 = HasAvx2Fma();
#endif
  for (int64_t i = 0; i < m; ++i) {
    const float* __restrict ar = a + i * k;
    uint8_t* __restrict qr = q + i * k_padded;
    float mn = ar[0], mx = ar[0];
    int64_t mm = 0;
#ifdef CF_GEMM_X86
    if (avx2) mm = MinMaxRowAvx2(ar, k, &mn, &mx);
#endif
    for (int64_t kk = std::max<int64_t>(mm, 1); kk < k; ++kk) {
      mn = std::min(mn, ar[kk]);
      mx = std::max(mx, ar[kk]);
    }
    const float range = mx - mn;
    // 7-bit codes [0, 127]: with weight codes capped at |127| the maddubs
    // pair sums stay <= 2 * 127 * 127 < INT16_MAX. A constant row
    // (range == 0) maps to scale 0 / all-zero codes and is reconstructed
    // exactly by the offset_dot term.
    row_scale[i] = range / 127.0f;
    row_min[i] = mn;
    const float inv = range > 0.0f ? 127.0f / range : 0.0f;
    int64_t kk = 0;
#ifdef CF_GEMM_X86
    if (avx2) kk = QuantizeRowAvx2(ar, k, mn, inv, qr);
#endif
    for (; kk < k; ++kk) {
      const long r = lrintf((ar[kk] - mn) * inv);
      qr[kk] = static_cast<uint8_t>(std::clamp<long>(r, 0, 127));
    }
    // Zero padding codes multiply zero weight padding: no contribution.
    for (kk = k; kk < k_padded; ++kk) qr[kk] = 0;
  }
}

void Int8GemmI32Serial(int64_t m, const Int8Pack& b, const uint8_t* qa,
                       int32_t* acc) {
  Int8CoreRows(0, m, b, qa, acc);
}

void Int8GemmI32(int64_t m, const Int8Pack& b, const uint8_t* qa,
                 int32_t* acc) {
  ParallelRanges(m, b.k_padded * b.n, [&b, qa, acc](int64_t i0, int64_t i1) {
    Int8CoreRows(i0, i1, b, qa, acc);
  });
}

void Int8GemmI32Reference(int64_t m, const Int8Pack& b, const uint8_t* qa,
                          int32_t* acc) {
  Int8RowsScalar(0, m, b.k_padded, b.n_padded, b.data.data(), qa, acc);
}

void DequantBiasRows(int64_t m, const Int8Pack& b, const int32_t* acc,
                     const float* row_scale, const float* row_min,
                     const float* bias, bool gelu, float* c) {
  const int64_t n = b.n;
  const float* __restrict sw = b.scale.data();
  const float* __restrict od = b.offset_dot.data();
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* __restrict ai = acc + i * b.n_padded;
    float* __restrict cr = c + i * n;
    const float sa = row_scale[i];
    const float mn = row_min[i];
    int64_t j = 0;
#ifdef CF_GEMM_X86
    if (HasAvx2Fma()) j = DequantRowAvx2(ai, sa, mn, sw, od, bias, n, cr);
#endif
    // Same expression as the AVX2 epilogue, one fmaf chain per element:
    // C = acc * (sa * sw) + (mn * offset_dot + bias).
    for (; j < n; ++j) {
      cr[j] = std::fmaf(static_cast<float>(ai[j]), sa * sw[j],
                        std::fmaf(mn, od[j], bias[j]));
    }
    if (gelu) {
      for (j = 0; j < n; ++j) cr[j] = GeluScalar(cr[j]);
    }
  }
}

void Bf16GemmAccSerial(int64_t m, const Bf16Pack& b, const float* a, float* c) {
  Bf16CoreRows(0, m, b.k, b.n, a, b.data.data(), c);
}

void Bf16GemmAcc(int64_t m, const Bf16Pack& b, const float* a, float* c) {
  const int64_t k = b.k;
  const int64_t n = b.n;
  const uint16_t* data = b.data.data();
  ParallelRanges(m, k * n, [=](int64_t i0, int64_t i1) {
    Bf16CoreRows(i0, i1, k, n, a, data, c);
  });
}

}  // namespace kernels
}  // namespace tensor
}  // namespace chainsformer
