#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define CF_GEMM_X86 1
#include <immintrin.h>
#endif

#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chainsformer {
namespace tensor {
namespace kernels {
namespace {

// Cache blocking: a packed B panel is kKC x kNC floats (128 KiB), sized to
// stay L2-resident while it is streamed over a strip of A rows; the four
// C-row accumulators of a strip (4 x kNC floats) stay in L1.
constexpr int64_t kNC = 256;
constexpr int64_t kKC = 128;

// Minimum multiply-accumulate count per worker task. Below twice this total
// the whole kernel runs inline on the calling thread, so the small matrices
// that dominate chain encoding at d=32 never pay dispatch overhead.
constexpr int64_t kGrainWork = 1 << 18;

std::mutex g_pool_mu;
int g_threads = 1;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool* Pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool->num_threads() != static_cast<size_t>(g_threads)) {
    g_pool = std::make_unique<ThreadPool>(static_cast<size_t>(g_threads));
  }
  return g_pool.get();
}

// Scalar strip kernel: C[i0:i1, jc:jc+nc] += A[i0:i1, pc:pc+kc] * panel.
// Four C-row accumulators walk the packed panel with a fixed (kk, j) order.
void StripScalar(int64_t i0, int64_t i1, int64_t k, int64_t n, int64_t pc,
                 int64_t jc, int64_t kc, int64_t nc, const float* a,
                 const float* pb, float* c) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* __restrict a0 = a + (i + 0) * k + pc;
    const float* __restrict a1 = a + (i + 1) * k + pc;
    const float* __restrict a2 = a + (i + 2) * k + pc;
    const float* __restrict a3 = a + (i + 3) * k + pc;
    float* __restrict c0 = c + (i + 0) * n + jc;
    float* __restrict c1 = c + (i + 1) * n + jc;
    float* __restrict c2 = c + (i + 2) * n + jc;
    float* __restrict c3 = c + (i + 3) * n + jc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* __restrict bp = pb + kk * nc;
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      for (int64_t j = 0; j < nc; ++j) {
        c0[j] += av0 * bp[j];
        c1[j] += av1 * bp[j];
        c2[j] += av2 * bp[j];
        c3[j] += av3 * bp[j];
      }
    }
  }
  for (; i < i1; ++i) {
    const float* __restrict ar = a + i * k + pc;
    float* __restrict cr = c + i * n + jc;
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* __restrict bp = pb + kk * nc;
      const float av = ar[kk];
      for (int64_t j = 0; j < nc; ++j) cr[j] += av * bp[j];
    }
  }
}

#ifdef CF_GEMM_X86
bool HasAvx2Fma() {
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
}

// AVX2 + FMA register-blocked strip kernel (6-row x 16-column tiles, plus
// 8-wide, 4-wide, and scalar-fmaf tails). Every C element is produced by the same
// arithmetic regardless of which tile or tail it falls into: a zeroed
// accumulator, one fused multiply-add per kk in ascending order, then a
// single add into C per panel. fmaf() rounds exactly like one _mm256_fmadd
// lane, so results are invariant to the strip decomposition (threads) and
// to the row count m (a batched GEMM row equals the same row of a smaller
// per-sequence GEMM bit-for-bit).
__attribute__((target("avx2,fma"))) void StripAvx2(
    int64_t i0, int64_t i1, int64_t k, int64_t n, int64_t pc, int64_t jc,
    int64_t kc, int64_t nc, const float* a, const float* pb, float* c) {
  int64_t i = i0;
  for (; i + 6 <= i1; i += 6) {
    int64_t j = 0;
    for (; j + 16 <= nc; j += 16) {
      __m256 acc[12];
      for (auto& v : acc) v = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* __restrict bp = pb + kk * nc + j;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        for (int r = 0; r < 6; ++r) {
          const __m256 av = _mm256_set1_ps(a[(i + r) * k + pc + kk]);
          acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
          acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
        }
      }
      for (int r = 0; r < 6; ++r) {
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc[2 * r]));
        _mm256_storeu_ps(
            cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc[2 * r + 1]));
      }
    }
    for (; j + 8 <= nc; j += 8) {
      for (int r = 0; r < 6; ++r) {
        __m256 acc = _mm256_setzero_ps();
        const float* __restrict ar = a + (i + r) * k + pc;
        for (int64_t kk = 0; kk < kc; ++kk) {
          acc = _mm256_fmadd_ps(_mm256_set1_ps(ar[kk]),
                                _mm256_loadu_ps(pb + kk * nc + j), acc);
        }
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc));
      }
    }
    // Tail tiles interleave the six independent row chains inside one kk
    // loop so the FMA latency of one row hides behind the other five; each
    // row's own chain is unchanged, so results stay bit-identical.
    for (; j + 4 <= nc; j += 4) {
      __m128 acc[6];
      for (auto& v : acc) v = _mm_setzero_ps();
      for (int64_t kk = 0; kk < kc; ++kk) {
        const __m128 bv = _mm_loadu_ps(pb + kk * nc + j);
        for (int r = 0; r < 6; ++r) {
          acc[r] = _mm_fmadd_ps(_mm_set1_ps(a[(i + r) * k + pc + kk]), bv,
                                acc[r]);
        }
      }
      for (int r = 0; r < 6; ++r) {
        float* __restrict cr = c + (i + r) * n + jc + j;
        _mm_storeu_ps(cr, _mm_add_ps(_mm_loadu_ps(cr), acc[r]));
      }
    }
    for (; j < nc; ++j) {
      float acc[6] = {};
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float bv = pb[kk * nc + j];
        for (int r = 0; r < 6; ++r) {
          acc[r] = std::fmaf(a[(i + r) * k + pc + kk], bv, acc[r]);
        }
      }
      for (int r = 0; r < 6; ++r) c[(i + r) * n + jc + j] += acc[r];
    }
  }
  for (; i < i1; ++i) {
    int64_t j = 0;
    for (; j + 16 <= nc; j += 16) {
      __m256 lo = _mm256_setzero_ps();
      __m256 hi = _mm256_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        const __m256 av = _mm256_set1_ps(ar[kk]);
        const float* __restrict bp = pb + kk * nc + j;
        lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), lo);
        hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp + 8), hi);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), lo));
      _mm256_storeu_ps(cr + 8, _mm256_add_ps(_mm256_loadu_ps(cr + 8), hi));
    }
    for (; j + 8 <= nc; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(ar[kk]),
                              _mm256_loadu_ps(pb + kk * nc + j), acc);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc));
    }
    for (; j + 4 <= nc; j += 4) {
      __m128 acc = _mm_setzero_ps();
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = _mm_fmadd_ps(_mm_set1_ps(ar[kk]),
                           _mm_loadu_ps(pb + kk * nc + j), acc);
      }
      float* __restrict cr = c + i * n + jc + j;
      _mm_storeu_ps(cr, _mm_add_ps(_mm_loadu_ps(cr), acc));
    }
    for (; j < nc; ++j) {
      float acc = 0.0f;
      const float* __restrict ar = a + i * k + pc;
      for (int64_t kk = 0; kk < kc; ++kk) {
        acc = std::fmaf(ar[kk], pb[kk * nc + j], acc);
      }
      c[i * n + jc + j] += acc;
    }
  }
}
#endif  // CF_GEMM_X86

// C[i0:i1, :] += A[i0:i1, :] * B for row-major A[.,k], B[k,n], C[.,n].
// Blocked loops over (jc, pc) with B packed per panel; within one build,
// every row's accumulation order is fixed and independent of the strip
// decomposition, which is what makes threaded output bitwise equal to
// single-threaded output — and batched rows bitwise equal to the same rows
// of a smaller GEMM. The compute strip dispatches to the AVX2+FMA
// microkernel when the CPU supports it, with the portable scalar strip as
// the fallback.
void GemmCoreRows(int64_t i0, int64_t i1, int64_t k, int64_t n, const float* a,
                  const float* b, float* c) {
  thread_local std::vector<float> pack;
#ifdef CF_GEMM_X86
  const bool avx2 = HasAvx2Fma();
#endif
  // When n fits in one column block the B panel's natural row stride already
  // equals the packed stride (nc == n), so the strips can read B in place
  // and the packing copy is skipped. Same values, same order — bit-identical.
  const bool pack_needed = n > kNC;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const float* pb = b + pc * n + jc;
      if (pack_needed) {
        pack.resize(static_cast<size_t>(kc * nc));
        float* dst = pack.data();
        for (int64_t kk = 0; kk < kc; ++kk) {
          const float* src = b + (pc + kk) * n + jc;
          std::copy(src, src + nc, dst + kk * nc);
        }
        pb = dst;
      }
#ifdef CF_GEMM_X86
      if (avx2) {
        StripAvx2(i0, i1, k, n, pc, jc, kc, nc, a, pb, c);
        continue;
      }
#endif
      StripScalar(i0, i1, k, n, pc, jc, kc, nc, a, pb, c);
    }
  }
}

// dst[cols, rows] = src[rows, cols]^T, blocked for cache locality.
void TransposeInto(const float* src, int64_t rows, int64_t cols, float* dst) {
  constexpr int64_t kB = 32;
  for (int64_t i0 = 0; i0 < rows; i0 += kB) {
    const int64_t i1 = std::min(rows, i0 + kB);
    for (int64_t j0 = 0; j0 < cols; j0 += kB) {
      const int64_t j1 = std::min(cols, j0 + kB);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) dst[j * rows + i] = src[i * cols + j];
      }
    }
  }
}

}  // namespace

void SetKernelThreads(int n) {
  if (n <= 0) {
    n = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_threads = n;
}

int KernelThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_threads;
}

void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn) {
  // Dispatch-decision metrics for the kernel layer: how often a GEMM ran
  // inline vs. was sliced onto the pool, and how coarse the slices were.
  static auto* inline_dispatches =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsDispatchInline);
  static auto* pooled_dispatches =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsDispatchPooled);
  static auto* tasks_dispatched =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kKernelsTasksDispatched);
  static auto* rows_per_dispatch =
      metrics::MetricsRegistry::Global().GetHistogram(
          metrics::names::kKernelsRowsPerDispatch);
  if (n <= 0) return;
  const int64_t cost = std::max<int64_t>(cost_per_item, 1);
  const int threads = KernelThreads();
  const double total = static_cast<double>(n) * static_cast<double>(cost);
  if (threads <= 1 || total < 2.0 * static_cast<double>(kGrainWork)) {
    inline_dispatches->Increment();
    fn(0, n);
    return;
  }
  int64_t num_ranges = std::min<int64_t>(
      threads, static_cast<int64_t>(total / static_cast<double>(kGrainWork)));
  num_ranges = std::clamp<int64_t>(num_ranges, 1, n);
  if (num_ranges <= 1) {
    inline_dispatches->Increment();
    fn(0, n);
    return;
  }
  pooled_dispatches->Increment();
  tasks_dispatched->Increment(num_ranges);
  rows_per_dispatch->Observe(static_cast<double>(n));
  CF_TRACE_SCOPE("kernels.gemm_pooled");
  const size_t grain =
      static_cast<size_t>((n + num_ranges - 1) / num_ranges);
  Pool()->ParallelForRanges(
      static_cast<size_t>(n), grain, [&fn](size_t begin, size_t end) {
        fn(static_cast<int64_t>(begin), static_cast<int64_t>(end));
      });
}

int64_t CountNonFinite(const float* x, int64_t n) {
  std::atomic<int64_t> total{0};
  // A float is non-finite iff its exponent field is all ones; comparing the
  // masked bits keeps the inner loop branch-free (auto-vectorizable) and,
  // unlike std::isfinite, immune to -ffast-math surprises.
  ParallelRanges(n, 1, [&total, x](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &x[i], sizeof(bits));
      local += static_cast<int64_t>((bits & 0x7F800000u) == 0x7F800000u);
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

void GemmAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* b,
             float* c) {
  ParallelRanges(m, k * n, [=](int64_t i0, int64_t i1) {
    GemmCoreRows(i0, i1, k, n, a, b, c);
  });
}

void GemmAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                   const float* b, float* c) {
  GemmCoreRows(0, m, k, n, a, b, c);
}

void GemmBtAcc(int64_t m, int64_t k, int64_t n, const float* g, const float* b,
               float* c) {
  // C[m,k] += G[m,n] * B[k,n]^T == G[m,n] * Bt[n,k] with Bt row-major, so
  // one explicit transpose turns both backward products into the forward
  // core (contiguous inner loops instead of strided column walks).
  std::vector<float> bt(static_cast<size_t>(n * k));
  TransposeInto(b, k, n, bt.data());
  const float* btp = bt.data();
  ParallelRanges(m, n * k, [=](int64_t i0, int64_t i1) {
    GemmCoreRows(i0, i1, n, k, g, btp, c);
  });
}

void GemmBtAccSerial(int64_t m, int64_t k, int64_t n, const float* g,
                     const float* b, float* c) {
  std::vector<float> bt(static_cast<size_t>(n * k));
  TransposeInto(b, k, n, bt.data());
  GemmCoreRows(0, m, n, k, g, bt.data(), c);
}

void GemmAtAcc(int64_t m, int64_t k, int64_t n, const float* a, const float* g,
               float* c) {
  // C[k,n] += A[m,k]^T * G[m,n] == At[k,m] * G[m,n].
  std::vector<float> at(static_cast<size_t>(k * m));
  TransposeInto(a, m, k, at.data());
  const float* atp = at.data();
  ParallelRanges(k, m * n, [=](int64_t k0, int64_t k1) {
    GemmCoreRows(k0, k1, m, n, atp, g, c);
  });
}

void GemmAtAccSerial(int64_t m, int64_t k, int64_t n, const float* a,
                     const float* g, float* c) {
  std::vector<float> at(static_cast<size_t>(k * m));
  TransposeInto(a, m, k, at.data());
  GemmCoreRows(0, k, m, n, at.data(), g, c);
}

}  // namespace kernels
}  // namespace tensor
}  // namespace chainsformer
