#ifndef CHAINSFORMER_TENSOR_NN_H_
#define CHAINSFORMER_TENSOR_NN_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace chainsformer {
namespace tensor {
namespace nn {

/// Base class for parameterized layers. Parameters registered by a module
/// (and by registered child modules) are collected by Parameters(), which is
/// what optimizers consume.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, including children's, in registration order.
  std::vector<Tensor> Parameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

 protected:
  Module() = default;

  /// Marks `t` trainable and records it; returns the registered tensor.
  Tensor RegisterParameter(Tensor t);

  /// Records a child module (not owned).
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
};

/// Fully connected layer: y = x W + b with W of shape [in, out].
/// Accepts rank-1 [in], rank-2 [n, in] or rank-3 [b, s, in] inputs; rank-3
/// inputs are flattened to one [b*s, in] GEMM so batched sequences feed the
/// blocked kernel layer a single large product.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// Weight matrix [in, out] — read access for the static-graph compiler.
  const Tensor& weight() const { return weight_; }
  /// Bias vector [out]; undefined when constructed with bias = false.
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (undefined when bias = false)
};

/// Layer normalization over the last dimension, with learnable gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  Tensor Forward(const Tensor& x) const;

  /// Scale parameter — read access for the static-graph compiler.
  const Tensor& gamma() const { return gamma_; }
  /// Shift parameter — read access for the static-graph compiler.
  const Tensor& beta() const { return beta_; }

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Multilayer perceptron with GELU activations between layers and a linear
/// final layer.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; requires at least {in, out}.
  Mlp(std::vector<int64_t> dims, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  /// The Linear stack (GELU between layers, linear final layer) — read
  /// access for the static-graph compiler.
  const std::vector<std::unique_ptr<Linear>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// Standard multi-head self-attention over a [seq, d] input (Eq. 13).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t dim, int64_t num_heads, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  /// Batched self-attention over a [b, s, d] input with a [b, s] key-padding
  /// mask (1 = valid, 0 = padded; undefined mask -> no masking). Padded keys
  /// receive exactly zero attention weight and zero gradient (MaskedSoftmax
  /// treats them as a -inf score bias), so per-batch results match the
  /// rank-2 Forward run on each unpadded sequence bit-for-bit.
  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }

  /// Projection layers — read access for the static-graph compiler.
  const Linear& q_proj() const { return *q_proj_; }
  const Linear& k_proj() const { return *k_proj_; }
  const Linear& v_proj() const { return *v_proj_; }
  const Linear& out_proj() const { return *out_proj_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> q_proj_;
  std::unique_ptr<Linear> k_proj_;
  std::unique_ptr<Linear> v_proj_;
  std::unique_ptr<Linear> out_proj_;
};

/// Post-LN transformer encoder layer: x = LN(x + MHA(x)); x = LN(x + FFN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t dim, int64_t num_heads, int64_t ff_dim,
                          Rng& rng);

  Tensor Forward(const Tensor& x) const;
  /// Batched variant over [b, s, d] with a [b, s] key-padding mask.
  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  /// Sub-modules — read access for the static-graph compiler.
  const MultiHeadAttention& attention() const { return *attention_; }
  const Linear& ff1() const { return *ff1_; }
  const Linear& ff2() const { return *ff2_; }
  const LayerNorm& norm1() const { return *norm1_; }
  const LayerNorm& norm2() const { return *norm2_; }

 private:
  std::unique_ptr<MultiHeadAttention> attention_;
  std::unique_ptr<Linear> ff1_;
  std::unique_ptr<Linear> ff2_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<LayerNorm> norm2_;
};

/// Stack of encoder layers (the paper's encoder-only Transformer).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int64_t num_layers, int64_t dim, int64_t num_heads,
                     int64_t ff_dim, Rng& rng);

  Tensor Forward(const Tensor& x) const;
  /// Batched variant: encodes b padded sequences in one pass. `x` is
  /// [b, s, d]; `mask` is a [b, s] key-padding mask (1 = valid).
  Tensor Forward(const Tensor& x, const Tensor& mask) const;

  /// Encoder layers in forward order — read access for the static-graph
  /// compiler.
  const std::vector<std::unique_ptr<TransformerEncoderLayer>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

/// Embedding table [num_embeddings, dim]; Forward gathers rows.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng, float stddev = 0.1f);

  Tensor Forward(const std::vector<int64_t>& indices) const;
  /// Single row lookup as a rank-1 tensor.
  Tensor ForwardOne(int64_t index) const;

  const Tensor& table() const { return table_; }
  /// Mutable handle, e.g. for warm-starting the table from another model.
  Tensor& mutable_table() { return table_; }
  int64_t num_embeddings() const { return table_.size(0); }
  int64_t dim() const { return table_.size(1); }

 private:
  Tensor table_;
};

/// Single-layer LSTM; Forward runs the cell over a [seq, in] input and
/// returns the final hidden state [hidden]. Used by the "w LSTM as Chain
/// Encoder" ablation (Table VI).
class Lstm : public Module {
 public:
  Lstm(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  Tensor w_x_;   // [in, 4h] gate order: i, f, g, o
  Tensor w_h_;   // [h, 4h]
  Tensor bias_;  // [4h]
};

}  // namespace nn
}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_NN_H_
