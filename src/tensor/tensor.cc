#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "tensor/checks.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"

namespace chainsformer {
namespace tensor {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : prev_enabled_(g_grad_enabled) {
  g_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_enabled_; }

bool GradModeEnabled() { return g_grad_enabled; }

Tensor::Tensor(std::vector<int64_t> shape) {
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  int64_t n = 1;
  for (int64_t d : impl_->shape) {
    CF_CHECK_GE(d, 0);
    n *= d;
  }
  impl_->data.assign(static_cast<size_t>(n), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data().begin(), t.data().end(), value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  CF_CHECK_EQ(static_cast<size_t>(t.numel()), values.size());
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

const std::vector<int64_t>& Tensor::shape() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t axis) const {
  const auto& s = shape();
  if (axis < 0) axis += static_cast<int64_t>(s.size());
  CF_CHECK_GE(axis, 0);
  CF_CHECK_LT(axis, static_cast<int64_t>(s.size()));
  return s[static_cast<size_t>(axis)];
}

int64_t Tensor::numel() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->numel();
}

std::vector<float>& Tensor::data() {
  CF_CHECK(impl_ != nullptr);
  // Any mutable access counts as a mutation for the tape sanitizer's
  // version-counter protocol (tensor/checks.h). Read-only call sites go
  // through the const overload, which does not bump.
  impl_->BumpVersion();
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  CF_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->grad;
}

float Tensor::at(int64_t i) const {
  CF_CHECK_EQ(dim(), 1);
  return data()[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i, int64_t j) const {
  CF_CHECK_EQ(dim(), 2);
  return data()[static_cast<size_t>(i * shape()[1] + j)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  CF_CHECK_EQ(dim(), 3);
  return data()[static_cast<size_t>((i * shape()[1] + j) * shape()[2] + k)];
}

void Tensor::set(int64_t i, float v) {
  CF_CHECK_EQ(dim(), 1);
  data()[static_cast<size_t>(i)] = v;
}

void Tensor::set(int64_t i, int64_t j, float v) {
  CF_CHECK_EQ(dim(), 2);
  data()[static_cast<size_t>(i * shape()[1] + j)] = v;
}

float Tensor::item() const {
  CF_CHECK_EQ(numel(), 1);
  return data()[0];
}

bool Tensor::requires_grad() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  CF_CHECK(impl_ != nullptr);
  impl_->requires_grad = value;
  if (value) impl_->EnsureGrad();
  return *this;
}

void Tensor::ZeroGrad() {
  CF_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

namespace {

const char* OpName(const TensorImpl* node) {
  return node->debug != nullptr ? node->debug->op_name : "<leaf or unnamed op>";
}

std::string ShapeString(const TensorImpl* node) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < node->shape.size(); ++i) {
    if (i) os << ",";
    os << node->shape[i];
  }
  os << "]";
  return os.str();
}

/// The ops whose backward closures already ran this sweep, most recent
/// first — the "tape backtrace" printed with every sanitizer diagnostic.
/// Reverse-mode runs consumers before producers, so this reads as the chain
/// of ops between the loss and the failure site.
std::string TapeBacktrace(const std::vector<const char*>& executed) {
  constexpr size_t kMaxFrames = 12;
  std::ostringstream os;
  os << "tape backtrace (most recent op first):";
  if (executed.empty()) os << " <none run yet>";
  const size_t n = std::min(executed.size(), kMaxFrames);
  for (size_t i = 0; i < n; ++i) {
    os << "\n  #" << i << " " << executed[executed.size() - 1 - i];
  }
  if (executed.size() > kMaxFrames) {
    os << "\n  ... " << (executed.size() - kMaxFrames) << " more";
  }
  return os.str();
}

}  // namespace

void Tensor::Backward() {
  CF_CHECK(impl_ != nullptr);
  CF_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss tensor";
  CF_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";
  const CheckMode mode = GetCheckMode();
  if (mode != CheckMode::kOff && impl_->backward_consumed) {
    CF_LOG(Fatal) << "tape sanitizer: double Backward() on a freed tape "
                  << "(root op " << OpName(impl_.get())
                  << " was already backpropagated)";
  }

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  for (TensorImpl* node : topo) node->EnsureGrad();
  impl_->grad[0] = 1.0f;

  // topo is post-order, so reverse iteration visits consumers before
  // producers — exactly the order reverse-mode needs.
  if (mode == CheckMode::kOff) {
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      if ((*it)->backward_fn) (*it)->backward_fn();
    }
    return;
  }

  // Checked sweep (kShapes / kFull). Cached counter pointers keep the
  // per-node overhead to plain loads; see util/metrics.h for the idiom.
  static auto* version_violations = metrics::MetricsRegistry::Global()
                                        .GetCounter(metrics::names::kTapeVersionViolations);
  static auto* leaked_roots =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kTapeLeakedRoots);
  std::vector<const char*> executed;
  executed.reserve(topo.size());
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (!node->backward_fn) continue;
    if (node->backward_consumed) {
      CF_LOG(Fatal) << "tape sanitizer: use-after-backward — op "
                    << OpName(node) << " " << ShapeString(node)
                    << " was already backpropagated by an earlier Backward() "
                    << "and its tape is freed. "
                    << TapeBacktrace(executed);
    }
    if (node->debug != nullptr) {
      const auto& saved = node->debug->parent_versions;
      for (size_t p = 0; p < node->parents.size() && p < saved.size(); ++p) {
        const TensorImpl* parent = node->parents[p].get();
        if (parent->version != saved[p]) {
          version_violations->Increment();
          CF_LOG(Fatal)
              << "tape sanitizer: input " << p << " " << ShapeString(parent)
              << " of op " << OpName(node)
              << " was mutated after it was recorded (version "
              << saved[p] << " at record time, " << parent->version
              << " now); its saved value is stale and the gradient would be "
              << "silently wrong. " << TapeBacktrace(executed);
        }
      }
    }
    node->backward_fn();
    node->backward_consumed = true;
    executed.push_back(OpName(node));
    // Accumulation-site shape check: a consumer that grew or shrank a
    // parent's gradient buffer wrote through a stale size assumption.
    // (All tensors are float32, so a dtype mismatch shows up as a size
    // mismatch too.)
    for (const auto& parent : node->parents) {
      if (!parent->requires_grad || parent->grad.empty()) continue;
      if (parent->grad.size() != parent->data.size()) {
        CF_LOG(Fatal) << "tape sanitizer: op " << OpName(node)
                      << " accumulated a gradient of " << parent->grad.size()
                      << " elements into an input of "
                      << parent->data.size() << " elements "
                      << ShapeString(parent.get()) << ". "
                      << TapeBacktrace(executed);
      }
    }
  }

  if (mode == CheckMode::kFull) {
    // Leaked-root detection: a requires_grad leaf that is reachable from the
    // loss but whose gradient stayed exactly zero. Legitimate zeros exist
    // (dead ReLUs, fully masked rows), so this counts and warns rather than
    // aborting; tape.leaked_roots stays 0 on a healthy model.
    int leaked = 0;
    for (TensorImpl* node : topo) {
      if (node->backward_fn || !node->requires_grad) continue;
      bool any_nonzero = false;
      for (float g : node->grad) {
        if (g != 0.0f) {
          any_nonzero = true;
          break;
        }
      }
      if (!any_nonzero) ++leaked;
    }
    if (leaked > 0) {
      leaked_roots->Increment(leaked);
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true, std::memory_order_relaxed)) {
        CF_LOG(Warning)
            << "tape sanitizer: " << leaked << " requires_grad leaf root(s) "
            << "on this tape received an all-zero gradient (counted in "
            << "tape.leaked_roots; reported once per process)";
      }
    }
  }
}

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

std::string Tensor::DebugString(int max_values) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i) os << ",";
    os << shape()[i];
  }
  os << "], {";
  const auto& d = data();
  for (size_t i = 0; i < d.size() && i < static_cast<size_t>(max_values); ++i) {
    if (i) os << ", ";
    os << d[i];
  }
  if (d.size() > static_cast<size_t>(max_values)) os << ", ...";
  os << "})";
  return os.str();
}

}  // namespace tensor
}  // namespace chainsformer
