#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/logging.h"

namespace chainsformer {
namespace tensor {

namespace {
thread_local int g_no_grad_depth = 0;
}  // namespace

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradModeEnabled() { return g_no_grad_depth == 0; }

Tensor::Tensor(std::vector<int64_t> shape) {
  impl_ = std::make_shared<TensorImpl>();
  impl_->shape = std::move(shape);
  int64_t n = 1;
  for (int64_t d : impl_->shape) {
    CF_CHECK_GE(d, 0);
    n *= d;
  }
  impl_->data.assign(static_cast<size_t>(n), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data().begin(), t.data().end(), value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  CF_CHECK_EQ(static_cast<size_t>(t.numel()), values.size());
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

const std::vector<int64_t>& Tensor::shape() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t axis) const {
  const auto& s = shape();
  if (axis < 0) axis += static_cast<int64_t>(s.size());
  CF_CHECK_GE(axis, 0);
  CF_CHECK_LT(axis, static_cast<int64_t>(s.size()));
  return s[static_cast<size_t>(axis)];
}

int64_t Tensor::numel() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->numel();
}

std::vector<float>& Tensor::data() {
  CF_CHECK(impl_ != nullptr);
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  CF_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->grad;
}

float Tensor::at(int64_t i) const {
  CF_CHECK_EQ(dim(), 1);
  return data()[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i, int64_t j) const {
  CF_CHECK_EQ(dim(), 2);
  return data()[static_cast<size_t>(i * shape()[1] + j)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  CF_CHECK_EQ(dim(), 3);
  return data()[static_cast<size_t>((i * shape()[1] + j) * shape()[2] + k)];
}

void Tensor::set(int64_t i, float v) {
  CF_CHECK_EQ(dim(), 1);
  data()[static_cast<size_t>(i)] = v;
}

void Tensor::set(int64_t i, int64_t j, float v) {
  CF_CHECK_EQ(dim(), 2);
  data()[static_cast<size_t>(i * shape()[1] + j)] = v;
}

float Tensor::item() const {
  CF_CHECK_EQ(numel(), 1);
  return data()[0];
}

bool Tensor::requires_grad() const {
  CF_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  CF_CHECK(impl_ != nullptr);
  impl_->requires_grad = value;
  if (value) impl_->EnsureGrad();
  return *this;
}

void Tensor::ZeroGrad() {
  CF_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  CF_CHECK(impl_ != nullptr);
  CF_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss tensor";
  CF_CHECK(impl_->requires_grad)
      << "Backward() on a tensor that does not require grad";

  // Iterative post-order DFS to get a topological order of the tape.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorImpl* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  for (TensorImpl* node : topo) node->EnsureGrad();
  impl_->grad[0] = 1.0f;

  // topo is post-order, so reverse iteration visits consumers before
  // producers — exactly the order reverse-mode needs.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

std::string Tensor::DebugString(int max_values) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i) os << ",";
    os << shape()[i];
  }
  os << "], {";
  const auto& d = data();
  for (size_t i = 0; i < d.size() && i < static_cast<size_t>(max_values); ++i) {
    if (i) os << ", ";
    os << d[i];
  }
  if (d.size() > static_cast<size_t>(max_values)) os << ", ...";
  os << "})";
  return os.str();
}

}  // namespace tensor
}  // namespace chainsformer
