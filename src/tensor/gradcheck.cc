#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace tensor {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double eps, double tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Tensor& t : inputs) t.ZeroGrad();
  Tensor loss = fn(inputs);
  CF_CHECK_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& t : inputs) analytic.push_back(t.grad());

  // Numeric pass: central differences per element.
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    auto& data = inputs[ti].data();
    for (size_t j = 0; j < data.size(); ++j) {
      const float orig = data[j];
      data[j] = orig + static_cast<float>(eps);
      const double fp = fn(inputs).item();
      data[j] = orig - static_cast<float>(eps);
      const double fm = fn(inputs).item();
      data[j] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic[ti][j];
      const double abs_err = std::fabs(a - numeric);
      const double denom = std::max({std::fabs(a), std::fabs(numeric), 1.0});
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tolerance) result.ok = false;
    }
  }
  return result;
}

}  // namespace tensor
}  // namespace chainsformer
