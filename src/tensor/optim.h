#ifndef CHAINSFORMER_TENSOR_OPTIM_H_
#define CHAINSFORMER_TENSOR_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {
namespace optim {

/// Adam optimizer (Kingma & Ba). The paper trains with Adam, lr = 1e-4; we
/// default to that learning rate.
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-4f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float weight_decay = 0.0f);

  /// Applies one update using the parameters' accumulated gradients.
  void Step();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
};

/// Plain SGD with optional momentum, used by baseline trainers.
class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, float lr = 1e-2f,
               float momentum = 0.0f);

  void Step();
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> velocity_;
  float lr_;
  float momentum_;
};

/// Clips the global L2 norm of the gradients of `params` to `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(std::vector<Tensor>& params, float max_norm);

}  // namespace optim
}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_OPTIM_H_
