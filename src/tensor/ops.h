#ifndef CHAINSFORMER_TENSOR_OPS_H_
#define CHAINSFORMER_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {

// Differentiable tensor operations. Every function returns a fresh tensor;
// when grad mode is on and an input requires grad, the result carries a
// backward closure that accumulates into the inputs' gradients.
//
// Elementwise binary ops support three broadcast forms:
//   * identical shapes,
//   * rhs a 1-element tensor (scalar broadcast),
//   * rhs a rank-1 tensor matching lhs's last dimension (bias broadcast).

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

Tensor Relu(const Tensor& a);
/// Exact GELU: x * Phi(x).
Tensor Gelu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped to >= eps for numerical safety.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Sqrt(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
/// Inverse hyperbolic tangent; inputs clamped to |x| <= 1 - eps.
Tensor Atanh(const Tensor& a, float eps = 1e-6f);
/// Inverse hyperbolic cosine; inputs clamped to >= 1 + eps.
Tensor Acosh(const Tensor& a, float eps = 1e-7f);
/// Clamp with zero gradient outside [lo, hi].
Tensor Clamp(const Tensor& a, float lo, float hi);

/// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// [b,m,k] x [b,k,n] -> [b,m,n].
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

/// Copy-reshape preserving element order. -1 is not supported; sizes must
/// multiply to the input's numel.
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);
/// [m,n] -> [n,m].
Tensor Transpose2D(const Tensor& a);
/// Rank-3 axis permutation; (p0,p1,p2) is a permutation of (0,1,2).
Tensor Permute3(const Tensor& a, int p0, int p1, int p2);

/// Concatenation along `axis` (tensors must match on all other axes).
Tensor Concat(const std::vector<Tensor>& parts, int axis);
/// Stacks n rank-1 tensors of size d into an [n, d] matrix.
Tensor Stack(const std::vector<Tensor>& rows);
/// First-dimension slice [begin, end) of a rank-1/2/3 tensor.
Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end);
/// Last-dimension slice [begin, end) of a rank-1/2 tensor.
Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end);
/// Row `i` of a rank-2 tensor as a rank-1 tensor.
Tensor Row(const Tensor& a, int64_t i);
/// Gathers rows of a [num, d] table: result[i] = table[indices[i]].
Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices);

/// Sum of all elements -> scalar.
Tensor Sum(const Tensor& a);
/// Mean of all elements -> scalar.
Tensor Mean(const Tensor& a);
/// Sum over the last dimension (rank-2 [m,n] -> [m], rank-1 -> scalar).
Tensor SumLastDim(const Tensor& a);
/// Rank-1 dot product -> scalar.
Tensor Dot(const Tensor& a, const Tensor& b);
/// Euclidean norm of a rank-1 tensor -> scalar (safe at 0).
Tensor Norm(const Tensor& a, float eps = 1e-12f);

/// Softmax over the last dimension (rank 1-3).
Tensor Softmax(const Tensor& a);
/// Softmax over the last dimension with a key-padding mask (1 = valid,
/// 0 = padded; masked entries behave as a -inf bias: they get probability
/// exactly 0 in the forward pass and contribute exactly zero gradient).
/// `mask` is rank-1 [n] (shared by every row) or rank-2 [b, n] where the
/// flattened row count of `a` is a multiple of b: contiguous groups of
/// rows/b rows share a mask row, which matches batch-major head grouping
/// ([batch*heads, q, n] scores against a [batch, n] mask). The mask is a
/// constant: it must not require grad. Rows whose mask is all zero produce
/// an all-zero output row.
Tensor MaskedSoftmax(const Tensor& a, const Tensor& mask);
/// Head split for batched attention: [b, s, h*hd] -> [b*h, s, hd], laid out
/// batch-major (output batch index = b_idx * h + head_idx).
Tensor SplitHeads(const Tensor& a, int64_t num_heads);
/// Inverse of SplitHeads: [b*h, s, hd] -> [b, s, h*hd].
Tensor MergeHeads(const Tensor& a, int64_t num_heads);
/// Layer normalization over the last dimension with affine params
/// gamma/beta of shape [d].
Tensor LayerNormOp(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// Mean squared error between same-shaped tensors -> scalar.
Tensor MseLoss(const Tensor& pred, const Tensor& target);
/// Mean absolute error between same-shaped tensors -> scalar.
Tensor L1Loss(const Tensor& pred, const Tensor& target);
/// Smooth L1 (Huber) loss with threshold delta -> scalar.
Tensor SmoothL1Loss(const Tensor& pred, const Tensor& target, float delta = 1.0f);

/// Returns a detached copy: same data, no autograd history.
Tensor Detach(const Tensor& a);

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_OPS_H_
