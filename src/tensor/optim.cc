#include "tensor/optim.h"

#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace tensor {
namespace optim {

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    CF_CHECK_EQ(data.size(), grad.size());
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * data[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mh = m_[i][j] / bc1;
      const float vh = v_[i][j] / bc2;
      data[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    auto& grad = params_[i].grad();
    for (size_t j = 0; j < data.size(); ++j) {
      if (momentum_ != 0.0f) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + grad[j];
        data[j] -= lr_ * velocity_[i][j];
      } else {
        data[j] -= lr_ * grad[j];
      }
    }
  }
}

void Sgd::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

float ClipGradNorm(std::vector<Tensor>& params, float max_norm) {
  double total = 0.0;
  for (Tensor& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params) {
      for (float& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace optim
}  // namespace tensor
}  // namespace chainsformer
