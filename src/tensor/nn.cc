#include "tensor/nn.h"

#include <cmath>

#include "util/logging.h"

namespace chainsformer {
namespace tensor {
namespace nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& t : Parameters()) n += t.numel();
  return n;
}

Tensor Module::RegisterParameter(Tensor t) {
  t.set_requires_grad(true);
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) { children_.push_back(child); }

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(Tensor::Randn({in_features, out_features}, rng, stddev));
  if (bias) {
    bias_ = RegisterParameter(Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  if (x.dim() == 3) {
    // One [b*s, in] GEMM instead of b separate [s, in] products; the rows
    // are computed identically either way (row-partitioned kernels).
    Tensor y = Forward(Reshape(x, {x.size(0) * x.size(1), in_features_}));
    return Reshape(y, {x.size(0), x.size(1), out_features_});
  }
  const bool vector_input = x.dim() == 1;
  Tensor x2 = vector_input ? Reshape(x, {1, in_features_}) : x;
  CF_CHECK_EQ(x2.size(1), in_features_);
  Tensor y = MatMul(x2, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return vector_input ? Reshape(y, {out_features_}) : y;
}

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = RegisterParameter(Tensor::Ones({dim}));
  beta_ = RegisterParameter(Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

Mlp::Mlp(std::vector<int64_t> dims, Rng& rng) {
  CF_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = Gelu(h);
  }
  return h;
}

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t num_heads, Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  CF_CHECK_EQ(head_dim_ * num_heads, dim) << "dim must be divisible by heads";
  q_proj_ = std::make_unique<Linear>(dim, dim, rng);
  k_proj_ = std::make_unique<Linear>(dim, dim, rng);
  v_proj_ = std::make_unique<Linear>(dim, dim, rng);
  out_proj_ = std::make_unique<Linear>(dim, dim, rng);
  RegisterModule(q_proj_.get());
  RegisterModule(k_proj_.get());
  RegisterModule(v_proj_.get());
  RegisterModule(out_proj_.get());
}

Tensor MultiHeadAttention::Forward(const Tensor& x) const {
  CF_CHECK_EQ(x.dim(), 2);
  const int64_t seq = x.size(0);
  CF_CHECK_EQ(x.size(1), dim_);
  auto split_heads = [&](const Tensor& t) {
    // [seq, d] -> [seq, heads, hd] -> [heads, seq, hd]
    return Permute3(Reshape(t, {seq, num_heads_, head_dim_}), 1, 0, 2);
  };
  Tensor q = split_heads(q_proj_->Forward(x));
  Tensor k = split_heads(k_proj_->Forward(x));
  Tensor v = split_heads(v_proj_->Forward(x));
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor scores = MulScalar(BatchMatMul(q, Permute3(k, 0, 2, 1)), scale);
  Tensor attn = Softmax(scores);            // [heads, seq, seq]
  Tensor ctx = BatchMatMul(attn, v);        // [heads, seq, hd]
  Tensor merged = Reshape(Permute3(ctx, 1, 0, 2), {seq, dim_});
  return out_proj_->Forward(merged);
}

Tensor MultiHeadAttention::Forward(const Tensor& x, const Tensor& mask) const {
  CF_CHECK_EQ(x.dim(), 3);
  const int64_t batch = x.size(0), seq = x.size(1);
  CF_CHECK_EQ(x.size(2), dim_);
  if (mask.defined()) {
    CF_CHECK_EQ(mask.size(0), batch);
    CF_CHECK_EQ(mask.size(-1), seq);
  }
  // Projections run as single [batch*seq, d] GEMMs (rank-3 Linear), then the
  // heads split batch-major to [batch*heads, seq, hd] so a [batch, seq] mask
  // row serves all of a sequence's heads.
  Tensor q = SplitHeads(q_proj_->Forward(x), num_heads_);
  Tensor k = SplitHeads(k_proj_->Forward(x), num_heads_);
  Tensor v = SplitHeads(v_proj_->Forward(x), num_heads_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor scores = MulScalar(BatchMatMul(q, Permute3(k, 0, 2, 1)), scale);
  Tensor attn = mask.defined() ? MaskedSoftmax(scores, mask) : Softmax(scores);
  Tensor ctx = BatchMatMul(attn, v);  // [batch*heads, seq, hd]
  return out_proj_->Forward(MergeHeads(ctx, num_heads_));
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t dim, int64_t num_heads,
                                                 int64_t ff_dim, Rng& rng) {
  attention_ = std::make_unique<MultiHeadAttention>(dim, num_heads, rng);
  ff1_ = std::make_unique<Linear>(dim, ff_dim, rng);
  ff2_ = std::make_unique<Linear>(ff_dim, dim, rng);
  norm1_ = std::make_unique<LayerNorm>(dim);
  norm2_ = std::make_unique<LayerNorm>(dim);
  RegisterModule(attention_.get());
  RegisterModule(ff1_.get());
  RegisterModule(ff2_.get());
  RegisterModule(norm1_.get());
  RegisterModule(norm2_.get());
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x) const {
  Tensor h = norm1_->Forward(Add(x, attention_->Forward(x)));
  Tensor ff = ff2_->Forward(Gelu(ff1_->Forward(h)));
  return norm2_->Forward(Add(h, ff));
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x,
                                        const Tensor& mask) const {
  // LayerNorm, the FFN and the residual adds are all per-position, so only
  // the attention needs the mask; padded positions carry garbage values that
  // never reach valid positions.
  Tensor h = norm1_->Forward(Add(x, attention_->Forward(x, mask)));
  Tensor ff = ff2_->Forward(Gelu(ff1_->Forward(h)));
  return norm2_->Forward(Add(h, ff));
}

TransformerEncoder::TransformerEncoder(int64_t num_layers, int64_t dim,
                                       int64_t num_heads, int64_t ff_dim,
                                       Rng& rng) {
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(
        std::make_unique<TransformerEncoderLayer>(dim, num_heads, ff_dim, rng));
    RegisterModule(layers_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->Forward(h);
  return h;
}

Tensor TransformerEncoder::Forward(const Tensor& x, const Tensor& mask) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->Forward(h, mask);
  return h;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng, float stddev) {
  table_ = RegisterParameter(Tensor::Randn({num_embeddings, dim}, rng, stddev));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return Gather(table_, indices);
}

Tensor Embedding::ForwardOne(int64_t index) const {
  return Reshape(Gather(table_, {index}), {table_.size(1)});
}

Lstm::Lstm(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const float stddev =
      std::sqrt(1.0f / static_cast<float>(std::max<int64_t>(1, hidden_dim)));
  w_x_ = RegisterParameter(
      Tensor::Randn({input_dim, 4 * hidden_dim}, rng, stddev));
  w_h_ = RegisterParameter(
      Tensor::Randn({hidden_dim, 4 * hidden_dim}, rng, stddev));
  bias_ = RegisterParameter(Tensor::Zeros({4 * hidden_dim}));
}

Tensor Lstm::Forward(const Tensor& x) const {
  CF_CHECK_EQ(x.dim(), 2);
  CF_CHECK_EQ(x.size(1), input_dim_);
  const int64_t seq = x.size(0);
  const int64_t h = hidden_dim_;
  Tensor hidden = Tensor::Zeros({1, h});
  Tensor cell = Tensor::Zeros({1, h});
  for (int64_t t = 0; t < seq; ++t) {
    Tensor xt = SliceRows(x, t, t + 1);  // [1, in]
    Tensor gates = Add(Add(MatMul(xt, w_x_), MatMul(hidden, w_h_)), bias_);
    Tensor i_g = Sigmoid(SliceCols(gates, 0, h));
    Tensor f_g = Sigmoid(SliceCols(gates, h, 2 * h));
    Tensor g_g = Tanh(SliceCols(gates, 2 * h, 3 * h));
    Tensor o_g = Sigmoid(SliceCols(gates, 3 * h, 4 * h));
    cell = Add(Mul(f_g, cell), Mul(i_g, g_g));
    hidden = Mul(o_g, Tanh(cell));
  }
  return Reshape(hidden, {h});
}

}  // namespace nn
}  // namespace tensor
}  // namespace chainsformer
