#include "tensor/op_observer.h"

namespace chainsformer {
namespace tensor {
namespace {

thread_local OpObserver* g_op_observer = nullptr;

}  // namespace

OpObserver::~OpObserver() = default;

OpObserver* CurrentOpObserver() { return g_op_observer; }

ScopedOpObserver::ScopedOpObserver(OpObserver* observer)
    : previous_(g_op_observer) {
  g_op_observer = observer;
}

ScopedOpObserver::~ScopedOpObserver() { g_op_observer = previous_; }

}  // namespace tensor
}  // namespace chainsformer
