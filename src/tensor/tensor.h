#ifndef CHAINSFORMER_TENSOR_TENSOR_H_
#define CHAINSFORMER_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace chainsformer {
namespace tensor {

class Tensor;

/// Shared storage + autograd bookkeeping behind a Tensor handle.
///
/// Every differentiable op allocates a fresh TensorImpl whose `backward_fn`
/// scatters the node's gradient into its parents' gradients. The tape is the
/// implicit DAG formed by `parents`; Tensor::Backward() topologically sorts
/// it and runs the closures in reverse order.
struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> data;
  std::vector<float> grad;  // same size as data once EnsureGrad() ran
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;  // empty for leaves

  /// Mutation counter (the PyTorch version-counter protocol): bumped by
  /// every mutating access — non-const Tensor::data(), set(), checkpoint
  /// restore, optimizer steps. Ops recorded under a check mode (see
  /// tensor/checks.h) snapshot their inputs' versions; Backward() fails with
  /// the op name if a saved input was mutated after recording. Maintained in
  /// every mode (a single increment) so flipping the mode on needs no warmup.
  uint64_t version = 0;
  /// Set once this node's backward_fn has run under a check mode. A freed
  /// node reached by another Backward() — double-backward, or a new op
  /// consuming a stale intermediate — is a fatal sanitizer diagnostic.
  bool backward_consumed = false;
  /// Sanitizer record, allocated by the op layer only when a check mode is
  /// active at recording time: the op's name and the version snapshot of
  /// each entry of `parents` (parallel arrays).
  struct TapeDebug {
    const char* op_name = "";
    std::vector<uint64_t> parent_versions;
  };
  std::unique_ptr<TapeDebug> debug;

  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
  void BumpVersion() { ++version; }
};

/// Scoped switch that disables tape recording (inference mode). While a
/// NoGradGuard is alive on the current thread, ops produce constant tensors
/// with no parents, which keeps evaluation cheap.
///
/// The destructor restores the grad-mode state saved at construction rather
/// than unconditionally re-enabling recording, so guards nest correctly and
/// a guard created while recording was already disabled leaves it disabled.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_enabled_;
};

/// True when gradients are currently being recorded on this thread.
bool GradModeEnabled();

/// Value-semantic handle to a (possibly autograd-tracked) dense float
/// tensor of rank 0-3, stored row-major.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs require a non-null tensor.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  // --- Factories -----------------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);
  static Tensor Scalar(float value);
  /// Gaussian init with the given stddev.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float stddev = 1.0f);
  /// Uniform init in [lo, hi].
  static Tensor Rand(std::vector<int64_t> shape, Rng& rng, float lo, float hi);

  // --- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t dim() const;
  int64_t size(int64_t axis) const;
  int64_t numel() const;

  std::vector<float>& data();
  const std::vector<float>& data() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  /// Element access for rank-1/2/3 tensors.
  float at(int64_t i) const;
  float at(int64_t i, int64_t j) const;
  float at(int64_t i, int64_t j, int64_t k) const;
  void set(int64_t i, float v);
  void set(int64_t i, int64_t j, float v);

  /// Value of a 1-element tensor.
  float item() const;

  bool requires_grad() const;
  /// Marks a leaf tensor as trainable. Must be called before the tensor is
  /// used in any op whose gradient should flow into it.
  Tensor& set_requires_grad(bool value);

  /// Zeroes the gradient buffer (allocating it if needed).
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this scalar tensor.
  void Backward();

  std::shared_ptr<TensorImpl> impl() const { return impl_; }
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

  /// Debug string: shape + first few values.
  std::string DebugString(int max_values = 8) const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_TENSOR_H_
