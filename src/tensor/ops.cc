#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "tensor/checks.h"
#include "tensor/kernels.h"
#include "tensor/op_observer.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/metrics.h"

namespace chainsformer {
namespace tensor {
namespace {

using ImplPtr = std::shared_ptr<TensorImpl>;

ImplPtr NewImpl(std::vector<int64_t> shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(impl->numel()), 0.0f);
  return impl;
}

bool ShouldRecord(std::initializer_list<const Tensor*> inputs) {
  if (!GradModeEnabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->requires_grad()) return true;
  }
  return false;
}

/// Records `out` on the tape. Under a check mode this also captures the
/// sanitizer state of the new node: the op name and each parent's version
/// counter (validated again at Backward() time), and fails immediately if a
/// parent's tape was already freed by an earlier Backward().
void Attach(const char* op, const ImplPtr& out, std::vector<ImplPtr> parents,
            std::function<void()> backward) {
  out->requires_grad = true;
  out->parents = std::move(parents);
  out->backward_fn = std::move(backward);
  if (CheckModeEnabled()) {
    auto debug = std::make_unique<TensorImpl::TapeDebug>();
    debug->op_name = op;
    debug->parent_versions.reserve(out->parents.size());
    for (const ImplPtr& p : out->parents) {
      if (p->backward_consumed) {
        CF_LOG(Fatal) << "tape sanitizer: use-after-backward — op " << op
                      << " consumes the output of op "
                      << (p->debug != nullptr ? p->debug->op_name
                                              : "<unnamed op>")
                      << ", whose tape was already freed by Backward()";
      }
      debug->parent_versions.push_back(p->version);
    }
    out->debug = std::move(debug);
  }
}

void Attach(const char* op, const ImplPtr& out,
            std::initializer_list<ImplPtr> parents,
            std::function<void()> backward) {
  Attach(op, out, std::vector<ImplPtr>(parents.begin(), parents.end()),
         std::move(backward));
}

/// Cold path of the full-mode poison scan: `out` of op `op` holds `bad`
/// non-finite values. Reports the op together with summary statistics of
/// each input, then aborts. Because every op scans its own output before
/// returning, the op reported here is the *first* one in execution order to
/// produce a NaN/Inf — its inputs were scanned clean when they were made
/// (or are shown poisoned here if they are unscanned leaves).
[[noreturn]] void ReportPoison(const char* op, const ImplPtr& out, int64_t bad,
                               std::initializer_list<const Tensor*> inputs) {
  metrics::MetricsRegistry::Global()
      .GetCounter(metrics::names::kTapePoisonEvents)
      ->Increment();
  std::ostringstream os;
  int index = 0;
  for (const Tensor* t : inputs) {
    const auto& d = t->data();
    float mn = std::numeric_limits<float>::infinity();
    float mx = -std::numeric_limits<float>::infinity();
    double sum = 0.0;
    int64_t nonfinite = 0;
    for (float v : d) {
      if (std::isfinite(v)) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
      } else {
        ++nonfinite;
      }
    }
    const int64_t finite = static_cast<int64_t>(d.size()) - nonfinite;
    os << "\n  input " << index++ << " " << t->DebugString(0) << ": ";
    if (finite > 0) {
      os << "finite min " << mn << ", max " << mx << ", mean "
         << sum / static_cast<double>(finite) << ", ";
    }
    os << nonfinite << " non-finite of " << d.size();
  }
  CF_LOG(Fatal) << "numeric poison: op " << op << " produced " << bad
                << " non-finite value(s) in output "
                << Tensor::FromImpl(out).DebugString(0)
                << "; input stats:" << os.str();
}

/// Every op returns through here. In kFull mode the output is scanned for
/// NaN/Inf (vectorized, kernels::CountNonFinite) so poison is pinned to the
/// first op that produced it; in lower modes this is a relaxed atomic load
/// and a branch.
Tensor FinishOp(const char* op, const ImplPtr& out,
                std::initializer_list<const Tensor*> inputs) {
  if (GetCheckMode() == CheckMode::kFull) {
    const int64_t bad = kernels::CountNonFinite(
        out->data.data(), static_cast<int64_t>(out->data.size()));
    if (bad != 0) ReportPoison(op, out, bad, inputs);
  }
  Tensor result = Tensor::FromImpl(out);
  if (OpObserver* obs = CurrentOpObserver()) obs->OnOp(op, result, inputs);
  return result;
}

// Broadcast form of an elementwise binary op.
enum class Broadcast { kSame, kScalar, kLastDim };

Broadcast BroadcastKind(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return Broadcast::kSame;
  if (b.numel() == 1) return Broadcast::kScalar;
  if (b.dim() == 1 && b.size(0) == a.size(-1)) return Broadcast::kLastDim;
  CF_LOG(Fatal) << "Incompatible elementwise shapes: " << a.DebugString(0)
                << " vs " << b.DebugString(0);
  return Broadcast::kSame;
}

// Elementwise binary with forward fn and partial derivatives. dfa/dfb take
// (a_value, b_value) and return d(out)/d(a or b).
template <typename F, typename Da, typename Db>
Tensor EwBinary(const char* op, const Tensor& a, const Tensor& b, F f, Da dfa,
                Db dfb) {
  const Broadcast kind = BroadcastKind(a, b);
  auto out = NewImpl(a.shape());
  const auto& ad = a.data();
  const auto& bd = b.data();
  const int64_t last = a.size(-1);
  const float* adp = ad.data();
  const float* bdp = bd.data();
  float* odp = out->data.data();
  // kLastDim loops track the broadcast column with a wrap counter instead of
  // a per-element modulo; the hot path here is the row-vector bias add.
  // Each broadcast form gets its own loop: kSame with a direct index (the
  // per-element switch in bindex defeats vectorization), kLastDim with a
  // wrap counter instead of a per-element modulo, kScalar with b hoisted.
  kernels::ParallelRanges(
      static_cast<int64_t>(ad.size()), 1,
      [=](int64_t begin, int64_t end) {
        switch (kind) {
          case Broadcast::kSame:
            for (int64_t i = begin; i < end; ++i) odp[i] = f(adp[i], bdp[i]);
            return;
          case Broadcast::kScalar: {
            const float bv = bdp[0];
            for (int64_t i = begin; i < end; ++i) odp[i] = f(adp[i], bv);
            return;
          }
          case Broadcast::kLastDim: {
            // Row-blocked so the inner loop has a fixed b row and no wrap
            // branch; prefix/suffix cover ranges that start or end mid-row.
            const int64_t wrap = last;
            int64_t i = begin;
            for (int64_t j = begin % wrap; i < end && j != 0;
                 j = (j + 1) % wrap, ++i) {
              odp[i] = f(adp[i], bdp[j]);
            }
            for (; i + wrap <= end; i += wrap) {
              for (int64_t j = 0; j < wrap; ++j) {
                odp[i + j] = f(adp[i + j], bdp[j]);
              }
            }
            for (int64_t j = 0; i < end; ++i, ++j) odp[i] = f(adp[i], bdp[j]);
            return;
          }
        }
      });
  if (ShouldRecord({&a, &b})) {
    ImplPtr ai = a.impl(), bi = b.impl();
    TensorImpl* self = out.get();
    Attach(op, out, {ai, bi}, [ai, bi, self, kind, last, dfa, dfb]() {
      const size_t wrap = static_cast<size_t>(last);
      if (ai->requires_grad) {
        ai->EnsureGrad();
        if (kind == Broadcast::kSame) {
          for (size_t i = 0; i < self->data.size(); ++i) {
            ai->grad[i] += self->grad[i] * dfa(ai->data[i], bi->data[i]);
          }
        } else if (kind == Broadcast::kLastDim) {
          for (size_t base = 0; base < self->data.size(); base += wrap) {
            for (size_t j = 0; j < wrap; ++j) {
              ai->grad[base + j] +=
                  self->grad[base + j] * dfa(ai->data[base + j], bi->data[j]);
            }
          }
        } else {
          const float bv = bi->data[0];
          for (size_t i = 0; i < self->data.size(); ++i) {
            ai->grad[i] += self->grad[i] * dfa(ai->data[i], bv);
          }
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        if (kind == Broadcast::kSame) {
          for (size_t i = 0; i < self->data.size(); ++i) {
            bi->grad[i] += self->grad[i] * dfb(ai->data[i], bi->data[i]);
          }
        } else if (kind == Broadcast::kLastDim) {
          for (size_t base = 0; base < self->data.size(); base += wrap) {
            for (size_t j = 0; j < wrap; ++j) {
              bi->grad[j] +=
                  self->grad[base + j] * dfb(ai->data[base + j], bi->data[j]);
            }
          }
        } else {
          const float bv = bi->data[0];
          for (size_t i = 0; i < self->data.size(); ++i) {
            bi->grad[0] += self->grad[i] * dfb(ai->data[i], bv);
          }
        }
      }
    });
  }
  return FinishOp(op, out, {&a, &b});
}

// Elementwise unary. dfx receives (x, y) with y = f(x).
template <typename F, typename Dx>
Tensor EwUnary(const char* op, const Tensor& a, F f, Dx dfx) {
  auto out = NewImpl(a.shape());
  const auto& ad = a.data();
  const float* adp = ad.data();
  float* odp = out->data.data();
  kernels::ParallelRanges(static_cast<int64_t>(ad.size()), 1,
                          [=](int64_t begin, int64_t end) {
                            for (int64_t i = begin; i < end; ++i) {
                              odp[i] = f(adp[i]);
                            }
                          });
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach(op, out, {ai}, [ai, self, dfx]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < self->data.size(); ++i) {
        ai->grad[i] += self->grad[i] * dfx(ai->data[i], self->data[i]);
      }
    });
  }
  return FinishOp(op, out, {&a});
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return EwBinary(
      "Add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return EwBinary(
      "Sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return EwBinary(
      "Mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return EwBinary(
      "Div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return EwUnary(
      "AddScalar", a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return EwUnary(
      "MulScalar", a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  return EwUnary(
      "Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kInvSqrt2 = 0.70710678118654752f;
  constexpr float kInvSqrt2Pi = 0.39894228040143267f;
  // Forward arithmetic is shared with the static-graph executor via
  // kernels::GeluScalar so compiled plans match eager bit-for-bit.
  return EwUnary(
      "Gelu", a, [](float x) { return kernels::GeluScalar(x); },
      [](float x, float) {
        const float phi = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
        const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
        return phi + x * pdf;
      });
}

Tensor Tanh(const Tensor& a) {
  return EwUnary(
      "Tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return EwUnary(
      "Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Exp(const Tensor& a) {
  return EwUnary(
      "Exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return EwUnary(
      "Log", a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

Tensor Sqrt(const Tensor& a, float eps) {
  return EwUnary(
      "Sqrt", a, [eps](float x) { return std::sqrt(std::max(x, eps)); },
      [eps](float x, float y) {
        (void)x;
        return 0.5f / std::max(y, std::sqrt(eps));
      });
}

Tensor Square(const Tensor& a) {
  return EwUnary(
      "Square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Abs(const Tensor& a) {
  return EwUnary(
      "Abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Atanh(const Tensor& a, float eps) {
  return EwUnary(
      "Atanh", a,
      [eps](float x) {
        const float c = std::clamp(x, -1.0f + eps, 1.0f - eps);
        return std::atanh(c);
      },
      [eps](float x, float) {
        const float c = std::clamp(x, -1.0f + eps, 1.0f - eps);
        return 1.0f / (1.0f - c * c);
      });
}

Tensor Acosh(const Tensor& a, float eps) {
  return EwUnary(
      "Acosh", a,
      [eps](float x) { return std::acosh(std::max(x, 1.0f + eps)); },
      [eps](float x, float) {
        const float c = std::max(x, 1.0f + eps);
        return 1.0f / std::sqrt(c * c - 1.0f);
      });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  return EwUnary(
      "Clamp", a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) {
        return (x >= lo && x <= hi) ? 1.0f : 0.0f;
      });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CF_CHECK_EQ(a.dim(), 2);
  CF_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  CF_CHECK_EQ(k, b.size(0));
  auto out = NewImpl({m, n});
  kernels::GemmAcc(m, k, n, a.data().data(), b.data().data(),
                   out->data.data());
  if (ShouldRecord({&a, &b})) {
    ImplPtr ai = a.impl(), bi = b.impl();
    TensorImpl* self = out.get();
    Attach("MatMul", out, {ai, bi}, [ai, bi, self, m, k, n]() {
      const float* g = self->grad.data();
      if (ai->requires_grad) {
        ai->EnsureGrad();
        kernels::GemmBtAcc(m, k, n, g, bi->data.data(), ai->grad.data());
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        kernels::GemmAtAcc(m, k, n, ai->data.data(), g, bi->grad.data());
      }
    });
  }
  return FinishOp("MatMul", out, {&a, &b});
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  CF_CHECK_EQ(a.dim(), 3);
  CF_CHECK_EQ(b.dim(), 3);
  const int64_t bs = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  CF_CHECK_EQ(bs, b.size(0));
  CF_CHECK_EQ(k, b.size(1));
  auto out = NewImpl({bs, m, n});
  {
    // Parallelize over the flattened (batch, row) space so a few large
    // batches and many small ones both load every worker; each output row
    // is still produced by exactly one thread (deterministic).
    const float* ad = a.data().data();
    const float* bd = b.data().data();
    float* od = out->data.data();
    kernels::ParallelRanges(bs * m, k * n, [=](int64_t r0, int64_t r1) {
      int64_t r = r0;
      while (r < r1) {
        const int64_t bb = r / m;
        const int64_t i0 = r % m;
        const int64_t i1 = std::min(m, i0 + (r1 - r));
        kernels::GemmAccSerial(i1 - i0, k, n, ad + (bb * m + i0) * k,
                               bd + bb * k * n, od + (bb * m + i0) * n);
        r += i1 - i0;
      }
    });
  }
  if (ShouldRecord({&a, &b})) {
    ImplPtr ai = a.impl(), bi = b.impl();
    TensorImpl* self = out.get();
    Attach("BatchMatMul", out, {ai, bi}, [ai, bi, self, bs, m, k, n]() {
      const bool need_a = ai->requires_grad;
      const bool need_b = bi->requires_grad;
      if (need_a) ai->EnsureGrad();
      if (need_b) bi->EnsureGrad();
      const float* g = self->grad.data();
      const float* ad = ai->data.data();
      const float* bd = bi->data.data();
      float* ag = need_a ? ai->grad.data() : nullptr;
      float* bg = need_b ? bi->grad.data() : nullptr;
      kernels::ParallelRanges(bs, 2 * m * k * n, [=](int64_t b0, int64_t b1) {
        for (int64_t bb = b0; bb < b1; ++bb) {
          const float* gb = g + bb * m * n;
          if (need_a) {
            kernels::GemmBtAccSerial(m, k, n, gb, bd + bb * k * n,
                                     ag + bb * m * k);
          }
          if (need_b) {
            kernels::GemmAtAccSerial(m, k, n, ad + bb * m * k, gb,
                                     bg + bb * k * n);
          }
        }
      });
    });
  }
  return FinishOp("BatchMatMul", out, {&a, &b});
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  auto out = NewImpl(std::move(shape));
  CF_CHECK_EQ(out->numel(), a.numel());
  out->data = a.data();
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("Reshape", out, {ai}, [ai, self]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < self->grad.size(); ++i) ai->grad[i] += self->grad[i];
    });
  }
  return FinishOp("Reshape", out, {&a});
}

Tensor Transpose2D(const Tensor& a) {
  CF_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  auto out = NewImpl({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out->data[j * m + i] = a.data()[i * n + j];
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("Transpose2D", out, {ai}, [ai, self, m, n]() {
      ai->EnsureGrad();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          ai->grad[i * n + j] += self->grad[j * m + i];
        }
      }
    });
  }
  return FinishOp("Transpose2D", out, {&a});
}

Tensor Permute3(const Tensor& a, int p0, int p1, int p2) {
  CF_CHECK_EQ(a.dim(), 3);
  const int perm[3] = {p0, p1, p2};
  CF_CHECK_EQ(p0 + p1 + p2, 3);
  const int64_t in_shape[3] = {a.size(0), a.size(1), a.size(2)};
  std::vector<int64_t> out_shape = {in_shape[perm[0]], in_shape[perm[1]],
                                    in_shape[perm[2]]};
  auto out = NewImpl(out_shape);
  const int64_t in_stride[3] = {in_shape[1] * in_shape[2], in_shape[2], 1};
  // For out index (i,j,k), the source index places i on axis perm[0], etc.
  auto src_offset = [&](int64_t i, int64_t j, int64_t k) {
    return i * in_stride[perm[0]] + j * in_stride[perm[1]] + k * in_stride[perm[2]];
  };
  int64_t idx = 0;
  for (int64_t i = 0; i < out_shape[0]; ++i) {
    for (int64_t j = 0; j < out_shape[1]; ++j) {
      for (int64_t k = 0; k < out_shape[2]; ++k) {
        out->data[idx++] = a.data()[src_offset(i, j, k)];
      }
    }
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    std::vector<int64_t> os = out_shape;
    int q0 = perm[0], q1 = perm[1], q2 = perm[2];
    int64_t is0 = in_stride[0], is1 = in_stride[1], is2 = in_stride[2];
    Attach("Permute3", out, {ai}, [ai, self, os, q0, q1, q2, is0, is1, is2]() {
      ai->EnsureGrad();
      const int64_t strides[3] = {is0, is1, is2};
      const int perm2[3] = {q0, q1, q2};
      int64_t idx2 = 0;
      for (int64_t i = 0; i < os[0]; ++i) {
        for (int64_t j = 0; j < os[1]; ++j) {
          for (int64_t k = 0; k < os[2]; ++k) {
            ai->grad[i * strides[perm2[0]] + j * strides[perm2[1]] +
                     k * strides[perm2[2]]] += self->grad[idx2++];
          }
        }
      }
    });
  }
  return FinishOp("Permute3", out, {&a});
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  CF_CHECK(!parts.empty());
  const int64_t rank = parts[0].dim();
  if (axis < 0) axis += static_cast<int>(rank);
  CF_CHECK_GE(axis, 0);
  CF_CHECK_LT(axis, rank);
  std::vector<int64_t> shape = parts[0].shape();
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    CF_CHECK_EQ(p.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) CF_CHECK_EQ(p.size(d), shape[static_cast<size_t>(d)]);
    }
    axis_total += p.size(axis);
  }
  shape[static_cast<size_t>(axis)] = axis_total;
  auto out = NewImpl(shape);

  int64_t outer = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape[static_cast<size_t>(d)];
  int64_t inner = 1;
  for (int64_t d = axis + 1; d < rank; ++d) inner *= shape[static_cast<size_t>(d)];

  // Offsets (in elements of the axis) where each part begins.
  std::vector<int64_t> axis_offsets(parts.size());
  {
    int64_t off = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      axis_offsets[p] = off;
      off += parts[p].size(axis);
    }
  }
  for (size_t p = 0; p < parts.size(); ++p) {
    const int64_t pa = parts[p].size(axis);
    const auto& pd = parts[p].data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = pd.data() + o * pa * inner;
      float* dst = out->data.data() + (o * axis_total + axis_offsets[p]) * inner;
      std::copy(src, src + pa * inner, dst);
    }
  }

  bool record = GradModeEnabled();
  if (record) {
    bool any = false;
    for (const Tensor& p : parts) any = any || p.requires_grad();
    record = any;
  }
  if (record) {
    std::vector<ImplPtr> impls;
    impls.reserve(parts.size());
    for (const Tensor& p : parts) impls.push_back(p.impl());
    TensorImpl* self = out.get();
    std::vector<int64_t> sizes;
    for (const Tensor& p : parts) sizes.push_back(p.size(axis));
    Attach("Concat", out, impls,
           [impls, self, sizes, axis_offsets, outer, inner, axis_total]() {
             for (size_t p = 0; p < impls.size(); ++p) {
               if (!impls[p]->requires_grad) continue;
               impls[p]->EnsureGrad();
               const int64_t pa = sizes[p];
               for (int64_t o = 0; o < outer; ++o) {
                 const float* src = self->grad.data() +
                                    (o * axis_total + axis_offsets[p]) * inner;
                 float* dst = impls[p]->grad.data() + o * pa * inner;
                 for (int64_t i = 0; i < pa * inner; ++i) dst[i] += src[i];
               }
             }
           });
  }
  return FinishOp("Concat", out, {});
}

Tensor Stack(const std::vector<Tensor>& rows) {
  CF_CHECK(!rows.empty());
  const int64_t d = rows[0].numel();
  std::vector<Tensor> reshaped;
  reshaped.reserve(rows.size());
  for (const Tensor& r : rows) {
    CF_CHECK_EQ(r.numel(), d);
    reshaped.push_back(Reshape(r, {1, d}));
  }
  return Concat(reshaped, 0);
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  CF_CHECK_GE(a.dim(), 1);
  CF_CHECK_GE(begin, 0);
  CF_CHECK_LE(begin, end);
  CF_CHECK_LE(end, a.size(0));
  std::vector<int64_t> shape = a.shape();
  shape[0] = end - begin;
  int64_t inner = 1;
  for (size_t d = 1; d < shape.size(); ++d) inner *= shape[d];
  auto out = NewImpl(shape);
  std::copy(a.data().begin() + begin * inner, a.data().begin() + end * inner,
            out->data.begin());
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("SliceRows", out, {ai}, [ai, self, begin, inner]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < self->grad.size(); ++i) {
        ai->grad[static_cast<size_t>(begin * inner) + i] += self->grad[i];
      }
    });
  }
  return FinishOp("SliceRows", out, {&a});
}

Tensor SliceCols(const Tensor& a, int64_t begin, int64_t end) {
  CF_CHECK_GE(begin, 0);
  CF_CHECK_LE(begin, end);
  if (a.dim() == 1) return SliceRows(a, begin, end);
  CF_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1), w = end - begin;
  CF_CHECK_LE(end, n);
  auto out = NewImpl({m, w});
  for (int64_t i = 0; i < m; ++i) {
    std::copy(a.data().begin() + i * n + begin, a.data().begin() + i * n + end,
              out->data.begin() + i * w);
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("SliceCols", out, {ai}, [ai, self, m, n, w, begin]() {
      ai->EnsureGrad();
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < w; ++j) {
          ai->grad[i * n + begin + j] += self->grad[i * w + j];
        }
      }
    });
  }
  return FinishOp("SliceCols", out, {&a});
}

Tensor Row(const Tensor& a, int64_t i) {
  CF_CHECK_EQ(a.dim(), 2);
  return Reshape(SliceRows(a, i, i + 1), {a.size(1)});
}

Tensor Gather(const Tensor& table, const std::vector<int64_t>& indices) {
  CF_CHECK_EQ(table.dim(), 2);
  const int64_t num = table.size(0), d = table.size(1);
  auto out = NewImpl({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    CF_CHECK_GE(indices[i], 0);
    CF_CHECK_LT(indices[i], num);
    std::copy(table.data().begin() + indices[i] * d,
              table.data().begin() + (indices[i] + 1) * d,
              out->data.begin() + static_cast<int64_t>(i) * d);
  }
  if (ShouldRecord({&table})) {
    ImplPtr ti = table.impl();
    TensorImpl* self = out.get();
    std::vector<int64_t> idx = indices;
    Attach("Gather", out, {ti}, [ti, self, idx, d]() {
      ti->EnsureGrad();
      for (size_t i = 0; i < idx.size(); ++i) {
        for (int64_t j = 0; j < d; ++j) {
          ti->grad[idx[i] * d + j] += self->grad[static_cast<int64_t>(i) * d + j];
        }
      }
    });
  }
  return FinishOp("Gather", out, {&table});
}

Tensor Sum(const Tensor& a) {
  auto out = NewImpl({1});
  double acc = 0.0;
  for (float v : a.data()) acc += v;
  out->data[0] = static_cast<float>(acc);
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("Sum", out, {ai}, [ai, self]() {
      ai->EnsureGrad();
      for (auto& g : ai->grad) g += self->grad[0];
    });
  }
  return FinishOp("Sum", out, {&a});
}

Tensor Mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return MulScalar(Sum(a), inv);
}

Tensor SumLastDim(const Tensor& a) {
  CF_CHECK_GE(a.dim(), 1);
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  std::vector<int64_t> shape(a.shape().begin(), a.shape().end() - 1);
  if (shape.empty()) shape = {1};
  auto out = NewImpl(shape);
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (int64_t j = 0; j < n; ++j) acc += a.data()[r * n + j];
    out->data[static_cast<size_t>(r)] = static_cast<float>(acc);
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("SumLastDim", out, {ai}, [ai, self, rows, n]() {
      ai->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t j = 0; j < n; ++j) {
          ai->grad[r * n + j] += self->grad[static_cast<size_t>(r)];
        }
      }
    });
  }
  return FinishOp("SumLastDim", out, {&a});
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  CF_CHECK_EQ(a.dim(), 1);
  CF_CHECK_EQ(b.dim(), 1);
  CF_CHECK_EQ(a.numel(), b.numel());
  return Sum(Mul(a, b));
}

Tensor Norm(const Tensor& a, float eps) {
  return Sqrt(Sum(Square(a)), eps);
}

Tensor Softmax(const Tensor& a) {
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  auto out = NewImpl(a.shape());
  {
    const float* xd = a.data().data();
    float* yd = out->data.data();
    kernels::ParallelRanges(rows, n, [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        kernels::SoftmaxRow(xd + r * n, n, yd + r * n);
      }
    });
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("Softmax", out, {ai}, [ai, self, rows, n]() {
      ai->EnsureGrad();
      float* agrad = ai->grad.data();
      const float* yd = self->data.data();
      const float* gd = self->grad.data();
      kernels::ParallelRanges(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* y = yd + r * n;
          const float* g = gd + r * n;
          double dot = 0.0;
          for (int64_t j = 0; j < n; ++j) {
            dot += static_cast<double>(y[j]) * g[j];
          }
          for (int64_t j = 0; j < n; ++j) {
            agrad[r * n + j] += y[j] * (g[j] - static_cast<float>(dot));
          }
        }
      });
    });
  }
  return FinishOp("Softmax", out, {&a});
}

Tensor MaskedSoftmax(const Tensor& a, const Tensor& mask) {
  const int64_t n = a.size(-1);
  const int64_t rows = a.numel() / n;
  CF_CHECK(!mask.requires_grad()) << "the key-padding mask is a constant";
  CF_CHECK(mask.dim() == 1 || mask.dim() == 2);
  CF_CHECK_EQ(mask.size(-1), n);
  const int64_t mask_rows = mask.dim() == 2 ? mask.size(0) : 1;
  CF_CHECK_EQ(rows % mask_rows, 0)
      << "row count must be a multiple of the mask batch";
  // Contiguous groups of `group` rows share one mask row (batch-major heads).
  const int64_t group = rows / mask_rows;
  auto out = NewImpl(a.shape());
  // Snapshot the mask so the backward closure does not depend on the mask
  // tensor staying alive / unmodified.
  auto valid = std::make_shared<std::vector<float>>(mask.data());
  {
    const float* xd = a.data().data();
    const float* md = valid->data();
    float* yd = out->data.data();
    kernels::ParallelRanges(rows, n, [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        kernels::MaskedSoftmaxRow(xd + r * n, md + (r / group) * n, n,
                                  yd + r * n);
      }
    });
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("MaskedSoftmax", out, {ai}, [ai, self, rows, n]() {
      // Identical to the Softmax backward: masked entries have y == 0, so
      // y * (g - dot) vanishes there and no gradient leaks through padding.
      ai->EnsureGrad();
      float* agrad = ai->grad.data();
      const float* yd = self->data.data();
      const float* gd = self->grad.data();
      kernels::ParallelRanges(rows, n, [=](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* y = yd + r * n;
          const float* g = gd + r * n;
          double dot = 0.0;
          for (int64_t j = 0; j < n; ++j) {
            dot += static_cast<double>(y[j]) * g[j];
          }
          for (int64_t j = 0; j < n; ++j) {
            agrad[r * n + j] += y[j] * (g[j] - static_cast<float>(dot));
          }
        }
      });
    });
  }
  return FinishOp("MaskedSoftmax", out, {&a});
}

namespace {

// Visits every (merged_offset, split_offset) contiguous run of `hd` elements
// linking the [b, s, h*hd] and [b*h, s, hd] layouts, parallel over the b*h
// output batches. Runs are disjoint on both sides across (bb, hh) pairs, so
// either direction of copy/accumulate is race-free and deterministic.
template <typename Apply>
void ForEachHeadRun(int64_t b, int64_t s, int64_t h, int64_t hd,
                    const Apply& apply) {
  kernels::ParallelRanges(b * h, s * hd, [=](int64_t g0, int64_t g1) {
    for (int64_t g = g0; g < g1; ++g) {
      const int64_t bb = g / h, hh = g % h;
      for (int64_t i = 0; i < s; ++i) {
        apply((bb * s + i) * h * hd + hh * hd, (g * s + i) * hd);
      }
    }
  });
}

}  // namespace

Tensor SplitHeads(const Tensor& a, int64_t num_heads) {
  CF_CHECK_EQ(a.dim(), 3);
  const int64_t b = a.size(0), s = a.size(1), d = a.size(2);
  CF_CHECK_EQ(d % num_heads, 0);
  const int64_t hd = d / num_heads;
  auto out = NewImpl({b * num_heads, s, hd});
  {
    const float* in = a.data().data();
    float* dst = out->data.data();
    ForEachHeadRun(b, s, num_heads, hd, [=](int64_t mo, int64_t so) {
      std::copy(in + mo, in + mo + hd, dst + so);
    });
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("SplitHeads", out, {ai}, [ai, self, b, s, num_heads, hd]() {
      ai->EnsureGrad();
      float* ag = ai->grad.data();
      const float* g = self->grad.data();
      ForEachHeadRun(b, s, num_heads, hd, [=](int64_t mo, int64_t so) {
        for (int64_t j = 0; j < hd; ++j) ag[mo + j] += g[so + j];
      });
    });
  }
  return FinishOp("SplitHeads", out, {&a});
}

Tensor MergeHeads(const Tensor& a, int64_t num_heads) {
  CF_CHECK_EQ(a.dim(), 3);
  const int64_t bh = a.size(0), s = a.size(1), hd = a.size(2);
  CF_CHECK_EQ(bh % num_heads, 0);
  const int64_t b = bh / num_heads;
  auto out = NewImpl({b, s, num_heads * hd});
  {
    const float* in = a.data().data();
    float* dst = out->data.data();
    ForEachHeadRun(b, s, num_heads, hd, [=](int64_t mo, int64_t so) {
      std::copy(in + so, in + so + hd, dst + mo);
    });
  }
  if (ShouldRecord({&a})) {
    ImplPtr ai = a.impl();
    TensorImpl* self = out.get();
    Attach("MergeHeads", out, {ai}, [ai, self, b, s, num_heads, hd]() {
      ai->EnsureGrad();
      float* ag = ai->grad.data();
      const float* g = self->grad.data();
      ForEachHeadRun(b, s, num_heads, hd, [=](int64_t mo, int64_t so) {
        for (int64_t j = 0; j < hd; ++j) ag[so + j] += g[mo + j];
      });
    });
  }
  return FinishOp("MergeHeads", out, {&a});
}

Tensor LayerNormOp(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  const int64_t n = a.size(-1);
  CF_CHECK_EQ(gamma.numel(), n);
  CF_CHECK_EQ(beta.numel(), n);
  const int64_t rows = a.numel() / n;
  auto out = NewImpl(a.shape());
  // Cache per-row statistics for the backward pass.
  auto xhat = std::make_shared<std::vector<float>>(a.data().size());
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  {
    const float* xd = a.data().data();
    const float* gd = gamma.data().data();
    const float* bd = beta.data().data();
    float* od = out->data.data();
    float* xhd = xhat->data();
    float* isd = inv_std->data();
    kernels::ParallelRanges(rows, 2 * n, [=](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        kernels::LayerNormRow(xd + r * n, gd, bd, n, eps, od + r * n,
                              xhd + r * n, isd + r);
      }
    });
  }
  if (ShouldRecord({&a, &gamma, &beta})) {
    ImplPtr ai = a.impl(), gi = gamma.impl(), bi = beta.impl();
    TensorImpl* self = out.get();
    Attach("LayerNorm", out, {ai, gi, bi},
           [ai, gi, bi, self, xhat, inv_std, rows, n]() {
      // gamma/beta grads reduce across rows into shared [n] buffers, so
      // they stay serial; the input grad is row-disjoint and parallelizes.
      if (gi->requires_grad) {
        gi->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* g = self->grad.data() + r * n;
          const float* xh = xhat->data() + r * n;
          for (int64_t j = 0; j < n; ++j) gi->grad[j] += g[j] * xh[j];
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* g = self->grad.data() + r * n;
          for (int64_t j = 0; j < n; ++j) bi->grad[j] += g[j];
        }
      }
      if (ai->requires_grad) {
        ai->EnsureGrad();
        float* agrad = ai->grad.data();
        const float* gd = self->grad.data();
        const float* xhd = xhat->data();
        const float* isd = inv_std->data();
        const float* gamma_d = gi->data.data();
        kernels::ParallelRanges(rows, 2 * n, [=](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const float* g = gd + r * n;
            const float* xh = xhd + r * n;
            const float istd = isd[r];
            // dxhat = g * gamma; dx = istd/n * (n*dxhat - sum(dxhat)
            //                                   - xhat * sum(dxhat*xhat))
            double s1 = 0.0, s2 = 0.0;
            for (int64_t j = 0; j < n; ++j) {
              const double dxh = static_cast<double>(g[j]) * gamma_d[j];
              s1 += dxh;
              s2 += dxh * xh[j];
            }
            for (int64_t j = 0; j < n; ++j) {
              const double dxh = static_cast<double>(g[j]) * gamma_d[j];
              agrad[r * n + j] += static_cast<float>(
                  istd * (dxh - s1 / n - static_cast<double>(xh[j]) * s2 / n));
            }
          }
        });
      }
    });
  }
  return FinishOp("LayerNorm", out, {&a, &gamma, &beta});
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  CF_CHECK_EQ(pred.numel(), target.numel());
  return Mean(Square(Sub(pred, target)));
}

Tensor L1Loss(const Tensor& pred, const Tensor& target) {
  CF_CHECK_EQ(pred.numel(), target.numel());
  return Mean(Abs(Sub(pred, target)));
}

Tensor SmoothL1Loss(const Tensor& pred, const Tensor& target, float delta) {
  CF_CHECK_EQ(pred.numel(), target.numel());
  Tensor diff = Sub(pred, target);
  Tensor absd = Abs(diff);
  // Branch-free Huber: for |d| <= delta -> 0.5 d^2 / delta; else |d| - delta/2.
  // Implemented via clamped quadratic part.
  Tensor clamped = Clamp(absd, 0.0f, delta);
  Tensor quadratic = MulScalar(Square(clamped), 0.5f / delta);
  Tensor linear = Sub(absd, clamped);
  return Mean(Add(quadratic, linear));
}

Tensor Detach(const Tensor& a) {
  auto out = NewImpl(a.shape());
  out->data = a.data();
  return FinishOp("Detach", out, {&a});
}

}  // namespace tensor
}  // namespace chainsformer
