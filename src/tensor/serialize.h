#ifndef CHAINSFORMER_TENSOR_SERIALIZE_H_
#define CHAINSFORMER_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {

/// Writes `tensors` to a binary checkpoint file. Format: magic "CFTN",
/// uint32 version, uint64 tensor count, then per tensor uint32 rank,
/// int64 dims, raw float32 data. Returns false on I/O failure.
bool SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);

/// Stream form of SaveTensors: appends the same "CFTN" section at the
/// stream's current position, so a tensor block can be embedded inside a
/// larger container format (serve::SaveModel). Returns false on I/O failure.
bool SaveTensorsToStream(std::ostream& out, const std::vector<Tensor>& tensors);

/// Loads a checkpoint into existing tensors *in place*: count and shapes
/// must match exactly (this guards against loading a checkpoint produced by
/// a differently-configured model). Returns false on I/O failure or any
/// mismatch, leaving the tensors unspecified-but-valid.
///
/// Payload lengths are validated against the remaining stream size before
/// each tensor is read: a file whose header parses but whose raw float data
/// is cut short is corrupt beyond "wrong model shape", so it aborts through
/// CF_LOG(Fatal) naming the truncated tensor index rather than returning
/// false.
bool LoadTensors(const std::string& path, std::vector<Tensor>& tensors);

/// Stream form of LoadTensors: reads one "CFTN" section starting at the
/// stream's current position (trailing bytes after the section are left
/// unread, enabling embedding). Same mismatch/truncation semantics.
bool LoadTensorsFromStream(std::istream& in, std::vector<Tensor>& tensors);

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_SERIALIZE_H_
