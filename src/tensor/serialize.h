#ifndef CHAINSFORMER_TENSOR_SERIALIZE_H_
#define CHAINSFORMER_TENSOR_SERIALIZE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace chainsformer {
namespace tensor {

/// Writes `tensors` to a binary checkpoint file. Format: magic "CFTN",
/// uint32 version, uint64 tensor count, then per tensor uint32 rank,
/// int64 dims, raw float32 data. Returns false on I/O failure.
bool SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);

/// Loads a checkpoint into existing tensors *in place*: count and shapes
/// must match exactly (this guards against loading a checkpoint produced by
/// a differently-configured model). Returns false on I/O failure or any
/// mismatch, leaving the tensors unspecified-but-valid.
bool LoadTensors(const std::string& path, std::vector<Tensor>& tensors);

}  // namespace tensor
}  // namespace chainsformer

#endif  // CHAINSFORMER_TENSOR_SERIALIZE_H_
