#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace chainsformer {
namespace tensor {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'T', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

/// Bytes between the stream's current position and its end (seeks back).
/// Used to validate payload lengths before reading them: an ifstream read
/// that is cut short by EOF only *sometimes* fails fast, and a header whose
/// count/shapes happen to match must not mask a truncated data section.
int64_t RemainingBytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  return static_cast<int64_t>(end - here);
}

}  // namespace

bool SaveTensorsToStream(std::ostream& out, const std::vector<Tensor>& tensors) {
  if (!out.good()) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    WritePod(out, static_cast<uint32_t>(t.dim()));
    for (int64_t d : t.shape()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  }
  return out.good();
}

bool SaveTensors(const std::string& path, const std::vector<Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  return SaveTensorsToStream(out, tensors);
}

bool LoadTensorsFromStream(std::istream& in, std::vector<Tensor>& tensors) {
  if (!in.good()) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) return false;
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count != tensors.size()) return false;
  for (size_t i = 0; i < tensors.size(); ++i) {
    Tensor& t = tensors[i];
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank != static_cast<uint32_t>(t.dim())) return false;
    for (int64_t expected : t.shape()) {
      int64_t d = 0;
      if (!ReadPod(in, &d) || d != expected) return false;
    }
    const int64_t payload =
        static_cast<int64_t>(t.data().size() * sizeof(float));
    const int64_t remaining = RemainingBytes(in);
    if (remaining >= 0 && remaining < payload) {
      // A matching header with a short data section is a corrupt file, not a
      // shape mismatch; fail loudly naming the tensor so the bad checkpoint
      // is diagnosable (and so partial loads can never look like success).
      CF_LOG(Fatal) << "LoadTensors: truncated payload for tensor " << i
                    << " of " << tensors.size() << ": need " << payload
                    << " bytes, stream has " << remaining;
    }
    in.read(reinterpret_cast<char*>(t.data().data()),
            static_cast<std::streamsize>(payload));
    if (!in.good() || in.gcount() != static_cast<std::streamsize>(payload)) {
      return false;
    }
  }
  return true;
}

bool LoadTensors(const std::string& path, std::vector<Tensor>& tensors) {
  std::ifstream in(path, std::ios::binary);
  return LoadTensorsFromStream(in, tensors);
}

}  // namespace tensor
}  // namespace chainsformer
