#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace chainsformer {
namespace tensor {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'T', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

bool SaveTensors(const std::string& path, const std::vector<Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    WritePod(out, static_cast<uint32_t>(t.dim()));
    for (int64_t d : t.shape()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  }
  return out.good();
}

bool LoadTensors(const std::string& path, std::vector<Tensor>& tensors) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) return false;
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count != tensors.size()) return false;
  for (Tensor& t : tensors) {
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank != static_cast<uint32_t>(t.dim())) return false;
    for (int64_t expected : t.shape()) {
      int64_t d = 0;
      if (!ReadPod(in, &d) || d != expected) return false;
    }
    in.read(reinterpret_cast<char*>(t.data().data()),
            static_cast<std::streamsize>(t.data().size() * sizeof(float)));
    if (!in.good()) return false;
  }
  return true;
}

}  // namespace tensor
}  // namespace chainsformer
