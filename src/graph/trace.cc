#include "graph/trace.h"

#include <sstream>

namespace chainsformer {
namespace graph {

void Tracer::OnOp(const char* op, const tensor::Tensor& out,
                  std::initializer_list<const tensor::Tensor*> inputs) {
  (void)inputs;
  TraceEvent event;
  event.op = op;
  event.shape = out.shape();
  events_.push_back(std::move(event));
}

std::string FormatTraceEvent(const TraceEvent& event) {
  std::ostringstream os;
  os << event.op << "[";
  for (size_t i = 0; i < event.shape.size(); ++i) {
    if (i > 0) os << ",";
    os << event.shape[i];
  }
  os << "]";
  return os.str();
}

}  // namespace graph
}  // namespace chainsformer
