#ifndef CHAINSFORMER_GRAPH_PLAN_H_
#define CHAINSFORMER_GRAPH_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "graph/quant.h"
#include "graph/trace.h"
#include "kg/knowledge_graph.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace chainsformer {
namespace core {
class ChainsFormerModel;
}  // namespace core
}  // namespace chainsformer

namespace chainsformer {
namespace graph {

/// Executor instruction set (DESIGN §6f). Each step reads/writes fixed
/// offsets in one preallocated float arena; weight operands are raw pointers
/// into the frozen model's parameter storage (pinned by Plan::pinned). The
/// fused kinds (kBiasGelu, kAddScalarMul, kResidualLayerNorm, kAdd3, kDot)
/// collapse eager elementwise chains into one pass; the fusion rules keep
/// the per-element float operation sequence identical, so results match the
/// eager ops bit-for-bit.
enum class StepKind : uint8_t {
  kGatherTable,        // out rows from weight table w0 via host index array
  kGatherRows,         // out rows from arena matrix in0 via host end-row ids
  kAdd,                // out = in0 + in1 elementwise (m elements)
  kMulEw,              // out = in0 * in1 elementwise (m elements)
  kAddScalar,          // out = in0 + scalar (m elements)
  kBiasAdd,            // rows m x n: out[i,j] = in0[i,j] + w0[j]
  kBiasGelu,           // rows m x n: out[i,j] = Gelu(in0[i,j] + w0[j])
  kGemm,               // out[m,n] = arena[in0][m,k] * w0[k,n] (zeroed first)
  kBatchMatMul,        // extra batches of [m,k] x [k,n]; in0, in1 in arena
  kScale,              // out = in0 * scalar (m elements)
  kSoftmaxRows,        // m rows of n
  kMaskedSoftmaxRows,  // m rows of n; mask row = arena[in1] + (r/extra)*n
  kResidualLayerNorm,  // m rows of n: out = LN(in0 + in1; w0=gamma, w1=beta)
  kSplitHeads,         // [m, k, extra*n] -> [m*extra, k, n]
  kMergeHeads,         // [m*extra, k, n] -> [m, k, extra*n]
  kPermute3,           // input dims (m, k, n); perm packed in extra
  kSliceCols,          // m rows: out[i, 0..n) = in0[i*k + extra .. +n]
  kAddScalarMul,       // out[i] = (in0[i] + scalar) * in1[i] (m elements)
  kAdd3,               // out[i] = (in0[i] + in1[i]) + in2[i] (m elements)
  kFill,               // out[0..m) = scalar
  kDot,                // out[0] = float(sum_i double(float(in0[i]*in1[i])))
  // Reduced-precision Linear lowering (DESIGN §6g). These replace the
  // kGemm + kBiasAdd/kBiasGelu pair when the plan's precision is not kFp64;
  // `extra` indexes Plan::int8_packs / bf16_packs.
  kGemmInt8,           // quantize arena[in0][m,k] rows + int8 GEMM into the
                       // executor's int32 scratch (out unused)
  kDequantBias,        // arena[out][m,n] = dequant(scratch) + w0 bias
  kDequantBiasGelu,    // same, with fused GELU
  kGemmBf16,           // out[m,n] = arena[in0][m,k] * bf16(w)[k,n], fp32 acc
};

/// Host-side int64 index array a gather step reads (filled by the executor's
/// binder from the request's chains before the steps run).
enum class IndexArray : uint8_t { kTokens, kPositions, kEndRows, kLengths };

/// One fused-kernel instruction. in0/in1/in2/out are float offsets into the
/// executor arena (-1 = unused); w0/w1 point at frozen weights. m/k/n/extra
/// are the kind-specific geometry documented on StepKind; `scalar` carries
/// the attention scale, LayerNorm epsilon, or fill value.
struct Step {
  StepKind kind;
  IndexArray index = IndexArray::kTokens;
  int64_t in0 = -1;
  int64_t in1 = -1;
  int64_t in2 = -1;
  int64_t out = -1;
  const float* w0 = nullptr;
  const float* w1 = nullptr;
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  int64_t extra = 0;
  float scalar = 0.0f;
};

/// A compiled inference program for one (k, max_len) geometry bucket:
/// the full PredictOnChainSets tensor compute for a single query with k
/// chains padded to max_len tokens, flattened to a fixed step sequence over
/// one liveness-packed arena. Produced by CompilePlan, executed by
/// PlanExecutor, cached per bucket by StaticGraphRuntime.
struct Plan {
  // Geometry.
  int64_t k = 0;        // chains per query (exact)
  int64_t max_len = 0;  // padded token-sequence length (bucket)
  int64_t dim = 0;      // hidden dim

  // Binder facts (how the executor turns a chain set into inputs).
  int64_t num_relation_ids = 0;
  int64_t num_attributes = 0;
  int64_t max_position = 0;    // position-embedding rows
  int64_t length_buckets = 0;  // length-embedding rows (clamp bound)
  core::NumericEncoding numeric_encoding = core::NumericEncoding::kFloat64Bits;
  bool use_numerical_aware = false;
  const std::vector<kg::AttributeStats>* train_stats = nullptr;

  // Program.
  std::vector<Step> steps;
  int64_t arena_floats = 0;
  int64_t mask_offset = -1;    // [k * max_len] key-padding mask
  int64_t bits_offset = -1;    // [k * 64] numeric encodings (if affine)
  int64_t vn_offset = -1;      // [k] normalized evidence values
  int64_t result_offset = -1;  // normalized scalar prediction

  // Reduced-precision state (empty / zero when precision == kFp64). Packs
  // are indexed by Step::extra of the quantized step kinds; the scratch
  // maxima size the executor's per-instance int8/int32 buffers (the arena
  // itself stays float-only).
  Precision precision = Precision::kFp64;
  std::vector<tensor::kernels::Int8Pack> int8_packs;
  std::vector<tensor::kernels::Bf16Pack> bf16_packs;
  int64_t quant_rows = 0;       // max m over kGemmInt8 steps
  int64_t quant_qa_elems = 0;   // max m * padded-k (uint8 activation codes)
  int64_t quant_acc_elems = 0;  // max m * padded-n (int32 accumulators)

  // The op skeleton the eager path is expected to execute for this
  // geometry, for cross-validation against a Tracer recording. Identical
  // in every precision mode: quantized lowering swaps step kinds, not the
  // eager op sequence the plan mirrors.
  std::vector<TraceEvent> expected_events;

  // Keeps the parameter storage behind every w0/w1 pointer alive.
  std::vector<std::shared_ptr<tensor::TensorImpl>> pinned;
};

/// Compiles the frozen model's single-query batched-encoder forward for k
/// chains padded to max_len tokens. Walks the model's module tree (the
/// accessors on ChainEncoder / NumericalReasoner / the nn layers) and emits
/// the exact eager op sequence with elementwise chains fused and every
/// intermediate placed in one arena by liveness. Requires the Transformer
/// encoder type. The caller is responsible for verifying the plan against
/// an eager run before serving from it (StaticGraphRuntime does both).
Plan CompilePlan(const core::ChainsFormerModel& model, int64_t k,
                 int64_t max_len);

/// Reduced-precision compilation: identical program shape, but every Linear
/// kGemm lowers to the precision's step kinds. kInt8 requires a QuantStore
/// whose rows came from BuildQuantStore on this model (matched against the
/// QuantizableLinears walk by name and shape); kBf16 packs bf16 weights
/// directly from the frozen fp32 parameters and ignores `store`.
Plan CompilePlan(const core::ChainsFormerModel& model, int64_t k,
                 int64_t max_len, Precision precision,
                 const QuantStore* store);

}  // namespace graph
}  // namespace chainsformer

#endif  // CHAINSFORMER_GRAPH_PLAN_H_
