#include "graph/executor.h"

#include <algorithm>
#include <cstring>

#include "core/numeric_encoding.h"
#include "tensor/kernels.h"
#include "util/logging.h"

namespace chainsformer {
namespace graph {

namespace kernels = tensor::kernels;

PlanExecutor::PlanExecutor(std::shared_ptr<const Plan> plan)
    : plan_(std::move(plan)) {
  CF_CHECK(plan_ != nullptr);
  arena_.resize(static_cast<size_t>(plan_->arena_floats), 0.0f);
  tokens_.resize(static_cast<size_t>(plan_->k * plan_->max_len), 0);
  positions_.resize(static_cast<size_t>(plan_->k * plan_->max_len), 0);
  end_rows_.resize(static_cast<size_t>(plan_->k), 0);
  lengths_.resize(static_cast<size_t>(plan_->k), 0);
  if (plan_->quant_rows > 0) {
    qa_.resize(static_cast<size_t>(plan_->quant_qa_elems), 0);
    qacc_.resize(static_cast<size_t>(plan_->quant_acc_elems), 0);
    qrow_scale_.resize(static_cast<size_t>(plan_->quant_rows), 0.0f);
    qrow_min_.resize(static_cast<size_t>(plan_->quant_rows), 0.0f);
  }
}

const int64_t* PlanExecutor::IndexData(IndexArray which) const {
  switch (which) {
    case IndexArray::kTokens:
      return tokens_.data();
    case IndexArray::kPositions:
      return positions_.data();
    case IndexArray::kEndRows:
      return end_rows_.data();
    case IndexArray::kLengths:
      return lengths_.data();
  }
  return nullptr;
}

void PlanExecutor::Bind(const core::TreeOfChains& chains) {
  const Plan& p = *plan_;
  CF_CHECK_EQ(static_cast<int64_t>(chains.size()), p.k);
  const int64_t nr = p.num_relation_ids;
  const int64_t end_token = nr + p.num_attributes;
  float* mask = arena_.data() + p.mask_offset;
  float* bits = p.bits_offset >= 0 ? arena_.data() + p.bits_offset : nullptr;
  float* vn = arena_.data() + p.vn_offset;
  for (int64_t i = 0; i < p.k; ++i) {
    const core::RAChain& c = chains[static_cast<size_t>(i)];
    const int64_t len = c.length() + 3;  // source attr, relations, query attr, end
    CF_CHECK_LE(len, p.max_len);
    int64_t* toks = tokens_.data() + i * p.max_len;
    int64_t* poss = positions_.data() + i * p.max_len;
    float* mrow = mask + i * p.max_len;
    // ChainEncoder::Tokenize: source attribute, relations tail-to-head,
    // query attribute, end token.
    int64_t t = 0;
    toks[t++] = nr + c.source_attribute;
    for (auto it = c.relations.rbegin(); it != c.relations.rend(); ++it) {
      toks[t++] = *it;
    }
    toks[t++] = nr + c.query_attribute;
    toks[t++] = end_token;
    CF_CHECK_EQ(t, len);
    for (int64_t pos = 0; pos < p.max_len; ++pos) {
      if (pos < len) {
        poss[pos] = std::min(pos, p.max_position - 1);
        mrow[pos] = 1.0f;
      } else {
        toks[pos] = end_token;
        poss[pos] = 0;
        mrow[pos] = 0.0f;
      }
    }
    end_rows_[static_cast<size_t>(i)] = i * p.max_len + len - 1;
    lengths_[static_cast<size_t>(i)] =
        std::clamp<int64_t>(c.length(), 0, p.length_buckets - 1);
    if (bits != nullptr) {
      if (p.numeric_encoding == core::NumericEncoding::kFloat64Bits) {
        core::EncodeFloat64BitsInto(c.source_value, bits + i * 64);
      } else {
        core::EncodeLogFeaturesInto(c.source_value, bits + i * 64);
      }
    }
    CF_CHECK_LT(static_cast<size_t>(c.source_attribute),
                p.train_stats->size());
    vn[i] = static_cast<float>(
        (*p.train_stats)[static_cast<size_t>(c.source_attribute)].Normalize(
            c.source_value));
  }
}

float PlanExecutor::RunNormalized(const core::TreeOfChains& chains) {
  Bind(chains);
  float* a = arena_.data();
  for (const Step& st : plan_->steps) {
    switch (st.kind) {
      case StepKind::kGatherTable: {
        const int64_t* idx = IndexData(st.index);
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          std::memcpy(out + r * st.n, st.w0 + idx[r] * st.n,
                      static_cast<size_t>(st.n) * sizeof(float));
        }
        break;
      }
      case StepKind::kGatherRows: {
        const int64_t* idx = IndexData(st.index);
        const float* in = a + st.in0;
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          std::memcpy(out + r * st.n, in + idx[r] * st.n,
                      static_cast<size_t>(st.n) * sizeof(float));
        }
        break;
      }
      case StepKind::kAdd: {
        const float* x = a + st.in0;
        const float* y = a + st.in1;
        float* out = a + st.out;
        for (int64_t i = 0; i < st.m; ++i) out[i] = x[i] + y[i];
        break;
      }
      case StepKind::kMulEw: {
        const float* x = a + st.in0;
        const float* y = a + st.in1;
        float* out = a + st.out;
        for (int64_t i = 0; i < st.m; ++i) out[i] = x[i] * y[i];
        break;
      }
      case StepKind::kAddScalar: {
        const float* x = a + st.in0;
        float* out = a + st.out;
        for (int64_t i = 0; i < st.m; ++i) out[i] = x[i] + st.scalar;
        break;
      }
      case StepKind::kBiasAdd:
        kernels::BiasAddRows(a + st.in0, st.w0, st.m, st.n, a + st.out);
        break;
      case StepKind::kBiasGelu:
        kernels::BiasGeluRows(a + st.in0, st.w0, st.m, st.n, a + st.out);
        break;
      case StepKind::kGemm: {
        float* out = a + st.out;
        std::fill(out, out + st.m * st.n, 0.0f);
        kernels::GemmAccSerial(st.m, st.k, st.n, a + st.in0, st.w0, out);
        break;
      }
      case StepKind::kBatchMatMul: {
        const float* x = a + st.in0;
        const float* y = a + st.in1;
        float* out = a + st.out;
        std::fill(out, out + st.extra * st.m * st.n, 0.0f);
        for (int64_t b = 0; b < st.extra; ++b) {
          kernels::GemmAccSerial(st.m, st.k, st.n, x + b * st.m * st.k,
                                 y + b * st.k * st.n, out + b * st.m * st.n);
        }
        break;
      }
      case StepKind::kScale: {
        const float* x = a + st.in0;
        float* out = a + st.out;
        for (int64_t i = 0; i < st.m; ++i) out[i] = x[i] * st.scalar;
        break;
      }
      case StepKind::kSoftmaxRows: {
        const float* x = a + st.in0;
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          kernels::SoftmaxRow(x + r * st.n, st.n, out + r * st.n);
        }
        break;
      }
      case StepKind::kMaskedSoftmaxRows: {
        const float* x = a + st.in0;
        const float* mask = a + st.in1;
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          kernels::MaskedSoftmaxRow(x + r * st.n, mask + (r / st.extra) * st.n,
                                    st.n, out + r * st.n);
        }
        break;
      }
      case StepKind::kResidualLayerNorm: {
        const float* x = a + st.in0;
        const float* res = a + st.in1;
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          kernels::ResidualLayerNormRow(x + r * st.n, res + r * st.n, st.w0,
                                        st.w1, st.n, st.scalar, out + r * st.n);
        }
        break;
      }
      case StepKind::kSplitHeads: {
        const float* in = a + st.in0;
        float* out = a + st.out;
        for (int64_t b = 0; b < st.m; ++b) {
          for (int64_t h = 0; h < st.extra; ++h) {
            for (int64_t s = 0; s < st.k; ++s) {
              std::memcpy(out + ((b * st.extra + h) * st.k + s) * st.n,
                          in + (b * st.k + s) * st.extra * st.n + h * st.n,
                          static_cast<size_t>(st.n) * sizeof(float));
            }
          }
        }
        break;
      }
      case StepKind::kMergeHeads: {
        const float* in = a + st.in0;
        float* out = a + st.out;
        for (int64_t b = 0; b < st.m; ++b) {
          for (int64_t h = 0; h < st.extra; ++h) {
            for (int64_t s = 0; s < st.k; ++s) {
              std::memcpy(out + (b * st.k + s) * st.extra * st.n + h * st.n,
                          in + ((b * st.extra + h) * st.k + s) * st.n,
                          static_cast<size_t>(st.n) * sizeof(float));
            }
          }
        }
        break;
      }
      case StepKind::kPermute3: {
        const float* in = a + st.in0;
        float* out = a + st.out;
        const int64_t dims[3] = {st.m, st.k, st.n};
        const int64_t strides[3] = {st.k * st.n, st.n, 1};
        const int p0 = static_cast<int>(st.extra / 9);
        const int p1 = static_cast<int>((st.extra / 3) % 3);
        const int p2 = static_cast<int>(st.extra % 3);
        const int64_t s0 = strides[p0], s1 = strides[p1], s2 = strides[p2];
        int64_t w = 0;
        for (int64_t i = 0; i < dims[p0]; ++i) {
          for (int64_t j = 0; j < dims[p1]; ++j) {
            for (int64_t l = 0; l < dims[p2]; ++l) {
              out[w++] = in[i * s0 + j * s1 + l * s2];
            }
          }
        }
        break;
      }
      case StepKind::kSliceCols: {
        const float* in = a + st.in0;
        float* out = a + st.out;
        for (int64_t r = 0; r < st.m; ++r) {
          std::memcpy(out + r * st.n, in + r * st.k + st.extra,
                      static_cast<size_t>(st.n) * sizeof(float));
        }
        break;
      }
      case StepKind::kAddScalarMul:
        kernels::AddScalarMul(a + st.in0, st.scalar, a + st.in1, st.m,
                              a + st.out);
        break;
      case StepKind::kAdd3:
        kernels::Add3(a + st.in0, a + st.in1, a + st.in2, st.m, a + st.out);
        break;
      case StepKind::kFill: {
        float* out = a + st.out;
        std::fill(out, out + st.m, st.scalar);
        break;
      }
      case StepKind::kGemmInt8: {
        const auto& pack = plan_->int8_packs[static_cast<size_t>(st.extra)];
        kernels::QuantizeActivationRows(st.m, st.k, pack.k_padded, a + st.in0,
                                        qa_.data(), qrow_scale_.data(),
                                        qrow_min_.data());
        kernels::Int8GemmI32Serial(st.m, pack, qa_.data(), qacc_.data());
        break;
      }
      case StepKind::kDequantBias:
      case StepKind::kDequantBiasGelu: {
        const auto& pack = plan_->int8_packs[static_cast<size_t>(st.extra)];
        kernels::DequantBiasRows(st.m, pack, qacc_.data(), qrow_scale_.data(),
                                 qrow_min_.data(), st.w0,
                                 st.kind == StepKind::kDequantBiasGelu,
                                 a + st.out);
        break;
      }
      case StepKind::kGemmBf16: {
        const auto& pack = plan_->bf16_packs[static_cast<size_t>(st.extra)];
        float* out = a + st.out;
        std::fill(out, out + st.m * st.n, 0.0f);
        kernels::Bf16GemmAccSerial(st.m, pack, a + st.in0, out);
        break;
      }
      case StepKind::kDot: {
        const float* x = a + st.in0;
        const float* y = a + st.in1;
        double acc = 0.0;
        for (int64_t i = 0; i < st.m; ++i) {
          const float prod = x[i] * y[i];
          acc += static_cast<double>(prod);
        }
        a[st.out] = static_cast<float>(acc);
        break;
      }
    }
  }
  return a[plan_->result_offset];
}

}  // namespace graph
}  // namespace chainsformer
