#ifndef CHAINSFORMER_GRAPH_EXECUTOR_H_
#define CHAINSFORMER_GRAPH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ra_chain.h"
#include "graph/plan.h"

namespace chainsformer {
namespace graph {

/// Runs a compiled Plan over one request's Tree of Chains. All working
/// memory — the float arena and the host index arrays — is allocated once in
/// the constructor and reused across Run calls, so a warmed executor
/// performs zero heap allocations per request (DESIGN §6f; asserted by
/// tests/graph_test.cc with an operator-new counting hook). Not thread-safe:
/// one executor serves one request at a time (StaticGraphRuntime keeps an
/// idle pool per plan).
///
/// This TU is deliberately tape-free: it must not include tensor/ops.h or
/// tensor/nn.h (enforced by cf_lint's graph-executor-tape-free rule) and its
/// hot path performs no std::function dispatch, tracing, or metrics.
class PlanExecutor {
 public:
  explicit PlanExecutor(std::shared_ptr<const Plan> plan);

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Binds `chains` into the arena (tokens, positions, mask, numeric
  /// encodings, normalized evidence values) and interprets the step program.
  /// Returns the *normalized* scalar prediction — the bitwise equivalent of
  /// the eager ForwardState::prediction item. The caller clamps and
  /// denormalizes. Requires chains.size() == plan->k and every chain's token
  /// sequence to fit in plan->max_len.
  float RunNormalized(const core::TreeOfChains& chains);

  const Plan& plan() const { return *plan_; }

 private:
  void Bind(const core::TreeOfChains& chains);
  const int64_t* IndexData(IndexArray which) const;

  std::shared_ptr<const Plan> plan_;
  std::vector<float> arena_;
  std::vector<int64_t> tokens_;
  std::vector<int64_t> positions_;
  std::vector<int64_t> end_rows_;
  std::vector<int64_t> lengths_;
  // Int8 working set (sized once from the plan's quant maxima; empty in
  // fp64/bf16 plans): activation codes, int32 accumulators, and per-row
  // dynamic-quantization facts handed from kGemmInt8 to the dequant step.
  std::vector<uint8_t> qa_;
  std::vector<int32_t> qacc_;
  std::vector<float> qrow_scale_;
  std::vector<float> qrow_min_;
};

}  // namespace graph
}  // namespace chainsformer

#endif  // CHAINSFORMER_GRAPH_EXECUTOR_H_
