#ifndef CHAINSFORMER_GRAPH_TRACE_H_
#define CHAINSFORMER_GRAPH_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/op_observer.h"
#include "tensor/tensor.h"

namespace chainsformer {
namespace graph {

/// One recorded op of an eager forward: the op-layer name (the string
/// FinishOp reports, e.g. "MatMul") and the output shape. Deliberately
/// minimal — the static-graph compiler derives the executable plan from the
/// frozen model itself (plan.cc); the trace exists to *cross-check* that the
/// compiler's op skeleton matches what the eager path actually ran
/// (DESIGN §6f).
struct TraceEvent {
  std::string op;
  std::vector<int64_t> shape;

  bool operator==(const TraceEvent& other) const {
    return op == other.op && shape == other.shape;
  }
  bool operator!=(const TraceEvent& other) const { return !(*this == other); }
};

/// OpObserver that appends a TraceEvent per op executed on the installing
/// thread. Install with tensor::ScopedOpObserver around one eager
/// PredictOnChainSets call to capture its full op sequence.
class Tracer : public tensor::OpObserver {
 public:
  void OnOp(const char* op, const tensor::Tensor& out,
            std::initializer_list<const tensor::Tensor*> inputs) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Human-readable one-line render of an event ("MatMul[4,32]"), for
/// mismatch diagnostics.
std::string FormatTraceEvent(const TraceEvent& event);

}  // namespace graph
}  // namespace chainsformer

#endif  // CHAINSFORMER_GRAPH_TRACE_H_
