#include "graph/plan.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/chain_encoder.h"
#include "core/chainsformer.h"
#include "core/numerical_reasoner.h"
#include "tensor/nn.h"
#include "util/logging.h"

namespace chainsformer {
namespace graph {
namespace {

using tensor::Tensor;
using tensor::nn::Linear;
using tensor::nn::Mlp;
using tensor::nn::MultiHeadAttention;
using tensor::nn::TransformerEncoderLayer;

// LayerNorm::Forward always uses the op-layer default epsilon.
constexpr float kLayerNormEps = 1e-5f;

// Arena buffers are aligned to 16 floats (64 bytes, one cache line).
constexpr int64_t kAlign = 16;

// Liveness interval of one virtual buffer. `def` is the index of the step
// that first writes it (-1 for binder-written inputs); `last_use` the last
// step that reads it (steps.size() for the result, which outlives the run).
struct BufInfo {
  int64_t size = 0;
  int64_t def = 0;
  int64_t last_use = -1;
  int64_t offset = -1;
};

/// Walks the frozen model and emits the Step program plus the expected eager
/// op-event skeleton side by side. Steps reference *virtual buffer ids*
/// while emitting; AssignOffsets() then runs liveness-based interval
/// allocation and rewrites every id to a float offset in one shared arena.
class Compiler {
 public:
  Compiler(const core::ChainsFormerModel& model, int64_t k, int64_t max_len,
           Precision precision, const QuantStore* store)
      : model_(model), k_(k), len_(max_len), precision_(precision) {
    plan_.precision = precision;
    if (precision == Precision::kInt8) {
      CF_CHECK(store != nullptr) << "int8 compilation requires a QuantStore";
      const auto linears = QuantizableLinears(model);
      CF_CHECK_EQ(linears.size(), store->linears.size())
          << "quantization store does not match the model's Linear set";
      for (size_t i = 0; i < linears.size(); ++i) {
        const QuantizedLinear& q = store->linears[i];
        CF_CHECK(q.name == linears[i].first)
            << "quantization store row " << i << " is " << q.name
            << ", model walk expects " << linears[i].first;
        store_rows_[linears[i].second->weight().data().data()] = &q;
      }
    }
  }

  Plan Build();

 private:
  // ---- Virtual buffers -----------------------------------------------------

  int64_t NewBuf(int64_t size) {
    bufs_.push_back(BufInfo{size, /*def=*/-2, /*last_use=*/-1, -1});
    return static_cast<int64_t>(bufs_.size()) - 1;
  }

  int64_t NewInput(int64_t size) {
    const int64_t id = NewBuf(size);
    bufs_[static_cast<size_t>(id)].def = -1;
    return id;
  }

  Step& Push(StepKind kind) {
    plan_.steps.push_back(Step{});
    plan_.steps.back().kind = kind;
    return plan_.steps.back();
  }

  void Expect(const char* op, std::vector<int64_t> shape) {
    plan_.expected_events.push_back(TraceEvent{op, std::move(shape)});
  }

  const float* Pin(const Tensor& t) {
    CF_CHECK(t.defined());
    plan_.pinned.push_back(t.impl());
    return t.data().data();
  }

  // ---- Composite emitters --------------------------------------------------

  int64_t GatherTable(const Tensor& table, IndexArray index, int64_t rows) {
    const int64_t n = table.size(1);
    const int64_t out = NewBuf(rows * n);
    Step& s = Push(StepKind::kGatherTable);
    s.index = index;
    s.out = out;
    s.w0 = Pin(table);
    s.m = rows;
    s.n = n;
    return out;
  }

  int64_t AddEw(int64_t a, int64_t b, int64_t count) {
    const int64_t out = NewBuf(count);
    Step& s = Push(StepKind::kAdd);
    s.in0 = a;
    s.in1 = b;
    s.out = out;
    s.m = count;
    return out;
  }

  /// GEMM + (fused) bias of one Linear over `rows` rank-2 rows. Emits the
  /// "MatMul"/"Add" expected events; a fused GELU changes only the step
  /// kind — the caller emits the "Gelu" event where the eager op actually
  /// fires (it may be separated from the Add by Reshape events at rank-3
  /// call sites). In a reduced-precision plan the same call site lowers to
  /// the quantized step kinds instead; the expected-event skeleton is
  /// identical, so the eager trace cross-check is precision-agnostic.
  int64_t LinearCore(const Linear& lin, int64_t in, int64_t rows,
                     bool fuse_gelu) {
    const int64_t in_f = lin.in_features(), out_f = lin.out_features();
    CF_CHECK(lin.bias().defined());
    if (precision_ == Precision::kInt8) {
      const int64_t pack = Int8PackIndex(lin);
      // kGemmInt8 consumes the float input into the executor's uint8/int32
      // scratch; the dequant step then materializes the float output. The
      // output buffer's live interval starts at the dequant step, so the
      // allocator may place it over the (already consumed) input — that is
      // safe precisely because nothing reads the input after the GEMM.
      const int64_t out_buf = NewBuf(rows * out_f);
      Step& g = Push(StepKind::kGemmInt8);
      g.in0 = in;
      g.m = rows;
      g.k = in_f;
      g.n = out_f;
      g.extra = pack;
      Expect("MatMul", {rows, out_f});
      Step& b = Push(fuse_gelu ? StepKind::kDequantBiasGelu
                               : StepKind::kDequantBias);
      b.out = out_buf;
      b.w0 = Pin(lin.bias());
      b.m = rows;
      b.n = out_f;
      b.extra = pack;
      Expect("Add", {rows, out_f});
      using tensor::kernels::Int8PaddedCols;
      using tensor::kernels::Int8PaddedDepth;
      plan_.quant_rows = std::max(plan_.quant_rows, rows);
      plan_.quant_qa_elems =
          std::max(plan_.quant_qa_elems, rows * Int8PaddedDepth(in_f));
      plan_.quant_acc_elems =
          std::max(plan_.quant_acc_elems, rows * Int8PaddedCols(out_f));
      return out_buf;
    }
    const int64_t gemm = NewBuf(rows * out_f);
    Step& g = Push(precision_ == Precision::kBf16 ? StepKind::kGemmBf16
                                                  : StepKind::kGemm);
    g.in0 = in;
    g.out = gemm;
    if (precision_ == Precision::kBf16) {
      g.extra = Bf16PackIndex(lin);
    } else {
      g.w0 = Pin(lin.weight());
    }
    g.m = rows;
    g.k = in_f;
    g.n = out_f;
    Expect("MatMul", {rows, out_f});
    Step& b = Push(fuse_gelu ? StepKind::kBiasGelu : StepKind::kBiasAdd);
    b.in0 = gemm;
    b.out = gemm;  // elementwise, in-place
    b.w0 = Pin(lin.bias());
    b.m = rows;
    b.n = out_f;
    Expect("Add", {rows, out_f});
    return gemm;
  }

  /// Index into plan_.int8_packs for this Linear, packing its store row
  /// into the interleaved kernel layout on first use.
  int64_t Int8PackIndex(const Linear& lin) {
    const float* wp = lin.weight().data().data();
    auto it = pack_index_.find(wp);
    if (it != pack_index_.end()) return it->second;
    auto row = store_rows_.find(wp);
    CF_CHECK(row != store_rows_.end())
        << "Linear missing from the quantization store";
    const QuantizedLinear& q = *row->second;
    CF_CHECK_EQ(q.in, lin.in_features());
    CF_CHECK_EQ(q.out, lin.out_features());
    plan_.int8_packs.push_back(tensor::kernels::PackInt8Weights(
        q.in, q.out, q.codes.data(), q.scale.data()));
    const int64_t idx = static_cast<int64_t>(plan_.int8_packs.size()) - 1;
    pack_index_[wp] = idx;
    return idx;
  }

  /// Index into plan_.bf16_packs, rounding the frozen fp32 weights to
  /// bfloat16 on first use (bf16 needs no checkpoint-side store).
  int64_t Bf16PackIndex(const Linear& lin) {
    const float* wp = lin.weight().data().data();
    auto it = pack_index_.find(wp);
    if (it != pack_index_.end()) return it->second;
    plan_.bf16_packs.push_back(tensor::kernels::PackBf16Weights(
        lin.in_features(), lin.out_features(), wp));
    const int64_t idx = static_cast<int64_t>(plan_.bf16_packs.size()) - 1;
    pack_index_[wp] = idx;
    return idx;
  }

  /// Mlp::Forward over rank-2 rows: Linear stacks with GELU between layers.
  int64_t MlpEmit(const Mlp& mlp, int64_t in, int64_t rows) {
    int64_t h = in;
    const auto& layers = mlp.layers();
    for (size_t i = 0; i < layers.size(); ++i) {
      const bool gelu = i + 1 < layers.size();
      h = LinearCore(*layers[i], h, rows, gelu);
      if (gelu) Expect("Gelu", {rows, layers[i]->out_features()});
    }
    return h;
  }

  int64_t Permute(int64_t in, int64_t d0, int64_t d1, int64_t d2, int p0,
                  int p1, int p2) {
    const int64_t dims[3] = {d0, d1, d2};
    const int64_t out = NewBuf(d0 * d1 * d2);
    Step& s = Push(StepKind::kPermute3);
    s.in0 = in;
    s.out = out;
    s.m = d0;
    s.k = d1;
    s.n = d2;
    s.extra = p0 * 9 + p1 * 3 + p2;
    Expect("Permute3", {dims[p0], dims[p1], dims[p2]});
    return out;
  }

  int64_t Bmm(int64_t a, int64_t b, int64_t bs, int64_t m, int64_t k,
              int64_t n) {
    const int64_t out = NewBuf(bs * m * n);
    Step& s = Push(StepKind::kBatchMatMul);
    s.in0 = a;
    s.in1 = b;
    s.out = out;
    s.m = m;
    s.k = k;
    s.n = n;
    s.extra = bs;
    Expect("BatchMatMul", {bs, m, n});
    return out;
  }

  /// Fused residual + LayerNorm: out = LN(x + r). `event_shape` is the
  /// shape both the eager Add and LayerNorm report (rank-2 or rank-3).
  int64_t ResidualLn(int64_t x, int64_t r, const tensor::nn::LayerNorm& ln,
                     int64_t rows, int64_t n,
                     const std::vector<int64_t>& event_shape) {
    const int64_t out = NewBuf(rows * n);
    Step& s = Push(StepKind::kResidualLayerNorm);
    s.in0 = x;
    s.in1 = r;
    s.out = out;
    s.w0 = Pin(ln.gamma());
    s.w1 = Pin(ln.beta());
    s.m = rows;
    s.n = n;
    s.scalar = kLayerNormEps;
    Expect("Add", event_shape);
    Expect("LayerNorm", event_shape);
    return out;
  }

  /// One masked rank-3 encoder layer over [b, s, d] (ChainEncoder path).
  int64_t EncoderLayer(const TransformerEncoderLayer& layer, int64_t x,
                       int64_t b, int64_t s, int64_t mask) {
    const MultiHeadAttention& mha = layer.attention();
    const int64_t h = mha.num_heads(), hd = mha.head_dim(), d = h * hd;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    auto proj = [&](const Linear& p) {
      Expect("Reshape", {b * s, d});
      const int64_t y = LinearCore(p, x, b * s, false);
      Expect("Reshape", {b, s, d});
      const int64_t sh = NewBuf(b * h * s * hd);
      Step& st = Push(StepKind::kSplitHeads);
      st.in0 = y;
      st.out = sh;
      st.m = b;
      st.k = s;
      st.n = hd;
      st.extra = h;
      Expect("SplitHeads", {b * h, s, hd});
      return sh;
    };
    const int64_t q = proj(mha.q_proj());
    const int64_t ky = proj(mha.k_proj());
    const int64_t v = proj(mha.v_proj());
    const int64_t kt = Permute(ky, b * h, s, hd, 0, 2, 1);
    const int64_t scores = Bmm(q, kt, b * h, s, hd, s);
    {
      Step& sc = Push(StepKind::kScale);
      sc.in0 = scores;
      sc.out = scores;
      sc.m = b * h * s * s;
      sc.scalar = scale;
      Expect("MulScalar", {b * h, s, s});
    }
    {
      Step& sm = Push(StepKind::kMaskedSoftmaxRows);
      sm.in0 = scores;
      sm.in1 = mask;
      sm.out = scores;  // row-wise, in-place
      sm.m = b * h * s;
      sm.n = s;
      sm.extra = h * s;  // rows per mask row (batch-major heads)
      Expect("MaskedSoftmax", {b * h, s, s});
    }
    const int64_t ctx = Bmm(scores, v, b * h, s, s, hd);
    const int64_t merged = NewBuf(b * s * d);
    {
      Step& mg = Push(StepKind::kMergeHeads);
      mg.in0 = ctx;
      mg.out = merged;
      mg.m = b;
      mg.k = s;
      mg.n = hd;
      mg.extra = h;
      Expect("MergeHeads", {b, s, d});
    }
    Expect("Reshape", {b * s, d});
    const int64_t attn = LinearCore(mha.out_proj(), merged, b * s, false);
    Expect("Reshape", {b, s, d});
    const int64_t h1 = ResidualLn(x, attn, layer.norm1(), b * s, d, {b, s, d});
    const int64_t ff_dim = layer.ff1().out_features();
    Expect("Reshape", {b * s, d});
    const int64_t f1 = LinearCore(layer.ff1(), h1, b * s, /*fuse_gelu=*/true);
    Expect("Reshape", {b, s, ff_dim});
    Expect("Gelu", {b, s, ff_dim});
    Expect("Reshape", {b * s, ff_dim});
    const int64_t f2 = LinearCore(layer.ff2(), f1, b * s, false);
    Expect("Reshape", {b, s, d});
    return ResidualLn(h1, f2, layer.norm2(), b * s, d, {b, s, d});
  }

  /// One unmasked rank-2 Treeformer layer over [k, d] (reasoner path).
  int64_t TreeformerLayer(const TransformerEncoderLayer& layer, int64_t x) {
    const MultiHeadAttention& mha = layer.attention();
    const int64_t h = mha.num_heads(), hd = mha.head_dim(), d = h * hd;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    auto proj = [&](const Linear& p) {
      const int64_t y = LinearCore(p, x, k_, false);
      Expect("Reshape", {k_, h, hd});
      return Permute(y, k_, h, hd, 1, 0, 2);  // [h, k, hd]
    };
    const int64_t q = proj(mha.q_proj());
    const int64_t ky = proj(mha.k_proj());
    const int64_t v = proj(mha.v_proj());
    const int64_t kt = Permute(ky, h, k_, hd, 0, 2, 1);  // [h, hd, k]
    const int64_t scores = Bmm(q, kt, h, k_, hd, k_);
    {
      Step& sc = Push(StepKind::kScale);
      sc.in0 = scores;
      sc.out = scores;
      sc.m = h * k_ * k_;
      sc.scalar = scale;
      Expect("MulScalar", {h, k_, k_});
    }
    {
      Step& sm = Push(StepKind::kSoftmaxRows);
      sm.in0 = scores;
      sm.out = scores;
      sm.m = h * k_;
      sm.n = k_;
      Expect("Softmax", {h, k_, k_});
    }
    const int64_t ctx = Bmm(scores, v, h, k_, k_, hd);
    const int64_t cm = Permute(ctx, h, k_, hd, 1, 0, 2);  // [k, h, hd]
    Expect("Reshape", {k_, d});
    const int64_t attn = LinearCore(mha.out_proj(), cm, k_, false);
    const int64_t h1 = ResidualLn(x, attn, layer.norm1(), k_, d, {k_, d});
    const int64_t ff_dim = layer.ff1().out_features();
    const int64_t f1 = LinearCore(layer.ff1(), h1, k_, /*fuse_gelu=*/true);
    Expect("Gelu", {k_, ff_dim});
    const int64_t f2 = LinearCore(layer.ff2(), f1, k_, false);
    return ResidualLn(h1, f2, layer.norm2(), k_, d, {k_, d});
  }

  void AssignOffsets();

  const core::ChainsFormerModel& model_;
  const int64_t k_;
  const int64_t len_;
  const Precision precision_;
  std::map<const float*, const QuantizedLinear*> store_rows_;
  std::map<const float*, int64_t> pack_index_;
  Plan plan_;
  std::vector<BufInfo> bufs_;
};

Plan Compiler::Build() {
  const core::ChainEncoder& enc = model_.encoder();
  const core::NumericalReasoner& reasoner = model_.reasoner();
  CF_CHECK(enc.encoder_type() == core::EncoderType::kTransformer)
      << "static graphs require the Transformer chain encoder";
  const int64_t d = enc.hidden_dim();
  const int64_t k = k_, len = len_;

  plan_.k = k;
  plan_.max_len = len;
  plan_.dim = d;
  plan_.num_relation_ids = model_.dataset().graph.num_relation_ids();
  plan_.num_attributes = model_.dataset().graph.num_attributes();
  plan_.max_position = enc.position_embedding().num_embeddings();
  plan_.length_buckets = core::NumericalReasoner::kMaxLengthBuckets;
  plan_.numeric_encoding = enc.numeric_encoding();
  plan_.use_numerical_aware = enc.use_numerical_aware();
  plan_.train_stats = &model_.train_stats();

  // Binder-written inputs.
  const int64_t mask = NewInput(k * len);
  const int64_t bits = plan_.use_numerical_aware ? NewInput(k * 64) : -1;
  const int64_t vn = NewInput(k);

  // ---- ChainEncoder::EncodeBatch -------------------------------------------
  const int64_t tok =
      GatherTable(enc.token_embedding().table(), IndexArray::kTokens, k * len);
  Expect("Gather", {k * len, d});
  const int64_t pos = GatherTable(enc.position_embedding().table(),
                                  IndexArray::kPositions, k * len);
  Expect("Gather", {k * len, d});
  int64_t x = AddEw(tok, pos, k * len * d);
  Expect("Add", {k * len, d});
  Expect("Reshape", {k, len, d});
  for (const auto& layer : enc.transformer().layers()) {
    x = EncoderLayer(*layer, x, k, len, mask);
  }
  Expect("Reshape", {k * len, d});
  const int64_t e_c = NewBuf(k * d);
  {
    Step& g = Push(StepKind::kGatherRows);
    g.index = IndexArray::kEndRows;
    g.in0 = x;
    g.out = e_c;
    g.m = k;
    g.n = d;
    Expect("Gather", {k, d});
  }

  int64_t reps = e_c;
  if (plan_.use_numerical_aware) {
    const int64_t alpha = MlpEmit(enc.mlp_alpha(), bits, k);  // [k, d*d]
    Expect("Reshape", {k, d, d});
    const int64_t beta = MlpEmit(enc.mlp_beta(), bits, k);  // [k, d]
    Expect("Reshape", {k, 1, d});
    const int64_t rotated = Bmm(e_c, alpha, k, 1, d, d);
    Expect("Reshape", {k, d});
    reps = NewBuf(k * d);
    Step& s = Push(StepKind::kAdd3);
    s.in0 = e_c;
    s.in1 = rotated;
    s.in2 = beta;
    s.out = reps;
    s.m = k * d;
    Expect("Add", {k, d});
    Expect("Add", {k, d});
  }

  // PredictOnChainSets slices this query's rows back out (identity here).
  Expect("SliceRows", {k, d});

  // ---- NumericalReasoner::Forward ------------------------------------------
  const int64_t raw = MlpEmit(reasoner.projection_mlp(), reps, k);
  const int64_t proj_out =
      reasoner.projection_mlp().layers().back()->out_features();
  int64_t pred = -1;
  switch (reasoner.projection()) {
    case core::ProjectionMode::kDirect:
      pred = raw;
      break;
    case core::ProjectionMode::kTranslation:
      pred = AddEw(raw, vn, k);
      Expect("Add", {k, 1});
      break;
    case core::ProjectionMode::kScaling: {
      pred = NewBuf(k);
      Step& s = Push(StepKind::kAddScalarMul);
      s.in0 = raw;
      s.in1 = vn;
      s.out = pred;
      s.m = k;
      s.scalar = 1.0f;
      Expect("AddScalar", {k, 1});
      Expect("Mul", {k, 1});
      break;
    }
    case core::ProjectionMode::kCombined: {
      CF_CHECK_EQ(proj_out, 2);
      auto slice = [&](int64_t begin) {
        const int64_t out = NewBuf(k);
        Step& s = Push(StepKind::kSliceCols);
        s.in0 = raw;
        s.out = out;
        s.m = k;
        s.k = 2;
        s.n = 1;
        s.extra = begin;
        Expect("SliceCols", {k, 1});
        return out;
      };
      const int64_t a0 = slice(0);
      const int64_t alpha = NewBuf(k);
      {
        Step& s = Push(StepKind::kAddScalar);
        s.in0 = a0;
        s.out = alpha;
        s.m = k;
        s.scalar = 1.0f;
        Expect("AddScalar", {k, 1});
      }
      const int64_t beta = slice(1);
      const int64_t shifted = AddEw(beta, vn, k);
      Expect("Add", {k, 1});
      pred = NewBuf(k);
      Step& s = Push(StepKind::kMulEw);
      s.in0 = alpha;
      s.in1 = shifted;
      s.out = pred;
      s.m = k;
      Expect("Mul", {k, 1});
      break;
    }
  }
  Expect("Reshape", {k});

  int64_t weights = -1;
  if (reasoner.use_chain_weighting() && k > 1) {
    const int64_t le = GatherTable(reasoner.length_embedding().table(),
                                   IndexArray::kLengths, k);
    Expect("Gather", {k, d});
    int64_t c0 = AddEw(reps, le, k * d);
    Expect("Add", {k, d});
    for (const auto& layer : reasoner.treeformer().layers()) {
      c0 = TreeformerLayer(*layer, c0);
    }
    const int64_t logits = MlpEmit(reasoner.weight_mlp(), c0, k);  // [k, 1]
    Expect("Reshape", {k});
    weights = logits;
    Step& sm = Push(StepKind::kSoftmaxRows);
    sm.in0 = logits;
    sm.out = logits;
    sm.m = 1;
    sm.n = k;
    Expect("Softmax", {k});
  } else {
    weights = NewBuf(k);
    Step& f = Push(StepKind::kFill);
    f.out = weights;
    f.m = k;
    f.scalar = 1.0f / static_cast<float>(k);
    // Tensor::Full is a factory, not an op: no expected event.
  }

  const int64_t result = NewBuf(1);
  {
    Step& s = Push(StepKind::kDot);
    s.in0 = weights;
    s.in1 = pred;
    s.out = result;
    s.m = k;
    Expect("Mul", {k});
    Expect("Sum", {1});
  }

  AssignOffsets();
  plan_.mask_offset = bufs_[static_cast<size_t>(mask)].offset;
  plan_.bits_offset =
      bits >= 0 ? bufs_[static_cast<size_t>(bits)].offset : -1;
  plan_.vn_offset = bufs_[static_cast<size_t>(vn)].offset;
  plan_.result_offset = bufs_[static_cast<size_t>(result)].offset;
  return std::move(plan_);
}

void Compiler::AssignOffsets() {
  const int64_t num_steps = static_cast<int64_t>(plan_.steps.size());
  // Liveness: def = first write, last_use = last read.
  for (int64_t s = 0; s < num_steps; ++s) {
    const Step& st = plan_.steps[static_cast<size_t>(s)];
    for (int64_t in : {st.in0, st.in1, st.in2}) {
      if (in >= 0) bufs_[static_cast<size_t>(in)].last_use = s;
    }
    if (st.out >= 0) {
      BufInfo& b = bufs_[static_cast<size_t>(st.out)];
      if (b.def == -2) b.def = s;
      b.last_use = std::max(b.last_use, s);
    }
  }
  // Binder-written inputs are live from before step 0; the result must
  // survive the whole run.
  for (BufInfo& b : bufs_) {
    if (b.def == -1) b.last_use = std::max<int64_t>(b.last_use, 0);
    CF_CHECK(b.def != -2) << "virtual buffer never written";
  }
  // The result buffer is read by the host after the last step.
  // (Identified below by giving it a sentinel when assigning offsets — the
  // last step's out is the result.)
  if (!plan_.steps.empty() && plan_.steps.back().out >= 0) {
    bufs_[static_cast<size_t>(plan_.steps.back().out)].last_use = num_steps;
  }

  // Interval allocation: place buffers in definition order; a buffer may
  // share arena space only with buffers whose live intervals do not
  // overlap. Because an output's interval starts at the step that also
  // *reads* its inputs, an output can never alias a live input (fused
  // in-place steps reuse the same buffer id instead).
  std::vector<size_t> order(bufs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return bufs_[a].def < bufs_[b].def;
  });
  int64_t arena = 0;
  std::vector<size_t> placed;
  for (size_t id : order) {
    BufInfo& b = bufs_[id];
    const int64_t size = ((b.size + kAlign - 1) / kAlign) * kAlign;
    // Occupied ranges of time-overlapping, already-placed buffers.
    std::vector<std::pair<int64_t, int64_t>> busy;
    for (size_t o : placed) {
      const BufInfo& ob = bufs_[o];
      if (ob.def <= b.last_use && b.def <= ob.last_use) {
        busy.emplace_back(ob.offset,
                          ob.offset + ((ob.size + kAlign - 1) / kAlign) * kAlign);
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t at = 0;
    for (const auto& [lo, hi] : busy) {
      if (at + size <= lo) break;
      at = std::max(at, hi);
    }
    b.offset = at;
    arena = std::max(arena, at + size);
    placed.push_back(id);
  }
  plan_.arena_floats = arena;

  // Rewrite virtual ids to arena offsets.
  for (Step& st : plan_.steps) {
    if (st.in0 >= 0) st.in0 = bufs_[static_cast<size_t>(st.in0)].offset;
    if (st.in1 >= 0) st.in1 = bufs_[static_cast<size_t>(st.in1)].offset;
    if (st.in2 >= 0) st.in2 = bufs_[static_cast<size_t>(st.in2)].offset;
    if (st.out >= 0) st.out = bufs_[static_cast<size_t>(st.out)].offset;
  }
}

}  // namespace

Plan CompilePlan(const core::ChainsFormerModel& model, int64_t k,
                 int64_t max_len) {
  return CompilePlan(model, k, max_len, Precision::kFp64, nullptr);
}

Plan CompilePlan(const core::ChainsFormerModel& model, int64_t k,
                 int64_t max_len, Precision precision,
                 const QuantStore* store) {
  CF_CHECK_GT(k, 0);
  CF_CHECK_GT(max_len, 0);
  return Compiler(model, k, max_len, precision, store).Build();
}

}  // namespace graph
}  // namespace chainsformer
