#include "graph/runtime.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "graph/trace.h"
#include "tensor/op_observer.h"
#include "util/logging.h"
#include "util/metric_names.h"
#include "util/trace.h"

namespace chainsformer {
namespace graph {
namespace {

// Plan-cache size backstop; beyond this, unseen buckets serve eagerly.
constexpr size_t kMaxPlans = 256;

// Token-length buckets are multiples of two: k stays exact (it changes the
// reduction geometry), while padding the sequence length is bitwise-neutral
// (GEMM strip invariance + exact-zero masked-softmax rows; DESIGN §6f).
int64_t LengthBucket(int64_t max_tokens) { return ((max_tokens + 1) / 2) * 2; }

int64_t MaxTokens(const core::TreeOfChains& chains) {
  int64_t mx = 0;
  for (const core::RAChain& c : chains) mx = std::max(mx, c.length() + 3);
  return mx;
}

bool BitwiseEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Default first-use parity tolerances (normalized prediction space). The
// bf16 budget is tighter: bf16 only rounds weight storage to 8 mantissa
// bits while int8 also quantizes activations dynamically.
double DefaultTolerance(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return 0.0;
    case Precision::kBf16:
      return 0.01;
    case Precision::kInt8:
      return 0.05;
  }
  return 0.0;
}

}  // namespace

StaticGraphRuntime::StaticGraphRuntime(const core::ChainsFormerModel& model)
    : StaticGraphRuntime(model, RuntimeOptions{}) {}

StaticGraphRuntime::StaticGraphRuntime(const core::ChainsFormerModel& model,
                                       RuntimeOptions options)
    : model_(model), options_(std::move(options)) {
  tolerance_ = options_.verify_tolerance >= 0.0
                   ? options_.verify_tolerance
                   : DefaultTolerance(options_.precision);
  auto& reg = metrics::MetricsRegistry::Global();
  hits_ = reg.GetCounter(metrics::names::kPlanCacheHits);
  misses_ = reg.GetCounter(metrics::names::kPlanCacheMisses);
  verify_failures_ = reg.GetCounter(metrics::names::kPlanVerifyFailures);
  verify_micros_ = reg.GetCounter(metrics::names::kPlanVerifyMicros);
  quant_fallbacks_ = reg.GetCounter(metrics::names::kPlanQuantFallbacks);
  arena_bytes_ = reg.GetGauge(metrics::names::kPlanArenaBytes);
  CF_CHECK(Supports(model)) << "static graphs require the Transformer encoder";
  CF_CHECK(options_.precision != Precision::kInt8 || options_.quant != nullptr)
      << "int8 serving requires the checkpoint's quantization store";
}

bool StaticGraphRuntime::Supports(const core::ChainsFormerModel& model) {
  return model.config().encoder_type == core::EncoderType::kTransformer;
}

core::BatchPrediction StaticGraphRuntime::Denormalized(
    const core::Query& query, float normalized) const {
  // Mirrors the eager finish: clamp in double, then denormalize with the
  // query attribute's training stats.
  CF_CHECK_LT(static_cast<size_t>(query.attribute),
              model_.train_stats().size());
  const kg::AttributeStats& s =
      model_.train_stats()[static_cast<size_t>(query.attribute)];
  const double clamped =
      std::clamp(static_cast<double>(normalized), -0.1, 1.1);
  core::BatchPrediction out;
  out.value = s.Denormalize(clamped);
  out.has_evidence = true;
  return out;
}

core::BatchPrediction StaticGraphRuntime::RunCompiled(
    Entry& entry, const core::Query& query,
    const core::TreeOfChains& chains) const {
  std::unique_ptr<PlanExecutor> ex;
  std::shared_ptr<const Plan> plan;
  {
    cf::MutexLock lock(entry.mu);
    if (!entry.idle.empty()) {
      ex = std::move(entry.idle.back());
      entry.idle.pop_back();
    } else {
      plan = entry.plan;
    }
  }
  if (ex == nullptr) ex = std::make_unique<PlanExecutor>(plan);
  const float normalized = ex->RunNormalized(chains);
  {
    cf::MutexLock lock(entry.mu);
    entry.idle.push_back(std::move(ex));
  }
  return Denormalized(query, normalized);
}

std::vector<StaticGraphRuntime::BucketStats> StaticGraphRuntime::Stats()
    const {
  std::vector<std::pair<std::pair<int64_t, int64_t>, std::shared_ptr<Entry>>>
      entries;
  {
    cf::MutexLock lock(mu_);
    entries.assign(plans_.begin(), plans_.end());
  }
  std::vector<BucketStats> out;
  out.reserve(entries.size());
  for (const auto& [key, entry] : entries) {
    BucketStats s;
    s.k = key.first;
    s.max_len = key.second;
    cf::MutexLock lock(entry->mu);
    s.ready = entry->ready;
    s.eager_fallback = entry->eager_fallback;
    s.precision = entry->eager_fallback ? PrecisionName(Precision::kFp64)
                                        : PrecisionName(options_.precision);
    s.verify_tolerance = tolerance_;
    s.idle_executors = static_cast<int64_t>(entry->idle.size());
    if (entry->plan != nullptr) {
      s.arena_bytes =
          entry->plan->arena_floats * static_cast<int64_t>(sizeof(float));
    }
    out.push_back(s);
  }
  return out;
}

core::BatchPrediction StaticGraphRuntime::Predict(
    const core::Query& query, const core::TreeOfChains& chains,
    PredictStats* stats) const {
  if (chains.empty()) {
    // Eager empty-chain-set fallback, reproduced exactly.
    CF_CHECK_LT(static_cast<size_t>(query.attribute),
                model_.train_stats().size());
    const kg::AttributeStats& s =
        model_.train_stats()[static_cast<size_t>(query.attribute)];
    core::BatchPrediction out;
    out.value = s.Denormalize(
        std::clamp(model_.FallbackNormalized(query.attribute), -0.1, 1.1));
    out.has_evidence = false;
    return out;
  }

  const int64_t k = static_cast<int64_t>(chains.size());
  const int64_t max_tokens = MaxTokens(chains);
  const int64_t bucket = LengthBucket(max_tokens);

  std::shared_ptr<Entry> entry;
  {
    cf::MutexLock lock(mu_);
    auto it = plans_.find({k, bucket});
    if (it != plans_.end()) {
      entry = it->second;
    } else if (plans_.size() < kMaxPlans) {
      entry = std::make_shared<Entry>();
      plans_.emplace(std::make_pair(k, bucket), entry);
    }
  }
  if (entry == nullptr) {
    // Cache full: serve eagerly without compiling another plan.
    misses_->Increment();
    return model_.PredictOnChainSets({query}, {&chains})[0];
  }

  bool eager_fallback = false;
  {
    cf::MutexLock lock(entry->mu);
    eager_fallback = entry->eager_fallback;
    if (!entry->ready) {
      // Bucket miss: trace one eager forward, compile, verify, then serve
      // this request from the eager result (already computed for the gate).
      misses_->Increment();
      CF_TRACE_SCOPE("plan.verify");
      const uint64_t gate_start_ns = trace::NowNs();
      Tracer tracer;
      std::vector<core::BatchPrediction> eager;
      {
        tensor::ScopedOpObserver scope(&tracer);
        eager = model_.PredictOnChainSets({query}, {&chains});
      }
      auto plan = std::make_shared<const Plan>(CompilePlan(
          model_, k, bucket, options_.precision, options_.quant.get()));
      core::BatchPrediction serve_result = eager[0];

      bool ok = true;
      if (model_.config().batched_encoder) {
        // Cross-check the compiler's op skeleton against the recorded
        // trace. The trace ran at the actual (unpadded) length, so compare
        // against a same-length compilation when the bucket padded it.
        const std::vector<TraceEvent>& expected =
            max_tokens == bucket
                ? plan->expected_events
                : CompilePlan(model_, k, max_tokens).expected_events;
        const std::vector<TraceEvent>& got = tracer.events();
        if (expected.size() != got.size()) {
          CF_LOG(Warning) << "static-graph trace skeleton mismatch: expected "
                          << expected.size() << " ops, traced " << got.size();
          ok = false;
        } else {
          for (size_t i = 0; i < expected.size(); ++i) {
            if (expected[i] != got[i]) {
              CF_LOG(Warning)
                  << "static-graph trace mismatch at op " << i << ": expected "
                  << FormatTraceEvent(expected[i]) << ", traced "
                  << FormatTraceEvent(got[i]);
              ok = false;
              break;
            }
          }
        }
      }

      if (ok) {
        auto ex = std::make_unique<PlanExecutor>(plan);
        const float normalized = ex->RunNormalized(chains);
        const core::BatchPrediction compiled = Denormalized(query, normalized);
        bool pass;
        if (options_.precision == Precision::kFp64) {
          pass = BitwiseEqual(compiled.value, eager[0].value);
          if (!pass) {
            CF_LOG(Warning)
                << "static-graph verify failed for bucket (k=" << k
                << ", len=" << bucket << "): compiled " << compiled.value
                << " vs eager " << eager[0].value;
          }
        } else {
          // Tolerance-based parity gate, compared in normalized space so
          // the budget is attribute-scale-free. A pass serves the compiled
          // value now (warm and cold requests agree); a fail pins the
          // bucket to the full-precision eager path.
          const double compiled_norm =
              std::clamp(static_cast<double>(normalized), -0.1, 1.1);
          CF_CHECK_LT(static_cast<size_t>(query.attribute),
                      model_.train_stats().size());
          const double eager_norm =
              model_.train_stats()[static_cast<size_t>(query.attribute)]
                  .Normalize(eager[0].value);
          pass = std::abs(compiled_norm - eager_norm) <= tolerance_;
          if (pass) {
            serve_result = compiled;
          } else {
            quant_fallbacks_->Increment();
            CF_LOG(Warning)
                << "static-graph " << PrecisionName(options_.precision)
                << " parity gate failed for bucket (k=" << k
                << ", len=" << bucket << "): |" << compiled_norm << " - "
                << eager_norm << "| > " << tolerance_
                << " (normalized); serving fp64 eager for this bucket";
          }
        }
        if (!pass) {
          ok = false;
        } else {
          entry->plan = plan;
          entry->idle.push_back(std::move(ex));
          const int64_t total =
              arena_bytes_total_.fetch_add(
                  plan->arena_floats * static_cast<int64_t>(sizeof(float)),
                  std::memory_order_relaxed) +
              plan->arena_floats * static_cast<int64_t>(sizeof(float));
          arena_bytes_->Set(static_cast<double>(total));
        }
      }
      if (!ok) {
        verify_failures_->Increment();
        entry->eager_fallback = true;
      }
      entry->ready = true;
      const int64_t gate_us = static_cast<int64_t>(
          (trace::NowNs() - gate_start_ns) / 1000);
      verify_micros_->Increment(gate_us);
      if (stats != nullptr) {
        stats->verify_us = gate_us;
        stats->bucket_miss = true;
      }
      return serve_result;
    }
  }

  // Checked outside the lock so fallen-back buckets serve eagerly in
  // parallel (the flag is monotonic once ready).
  if (eager_fallback) {
    return model_.PredictOnChainSets({query}, {&chains})[0];
  }
  hits_->Increment();
  if (stats != nullptr) stats->compiled = true;
  return RunCompiled(*entry, query, chains);
}

}  // namespace graph
}  // namespace chainsformer
