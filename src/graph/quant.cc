#include "graph/quant.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "core/chain_encoder.h"
#include "core/chainsformer.h"
#include "core/numerical_reasoner.h"
#include "graph/executor.h"
#include "graph/plan.h"
#include "tensor/kernels.h"
#include "tensor/nn.h"
#include "util/logging.h"

namespace chainsformer {
namespace graph {
namespace {

using tensor::nn::Linear;
using tensor::nn::Mlp;
using tensor::nn::TransformerEncoderLayer;

void WalkMlp(const std::string& prefix, const Mlp& mlp,
             std::vector<std::pair<std::string, const Linear*>>* out) {
  const auto& layers = mlp.layers();
  for (size_t i = 0; i < layers.size(); ++i) {
    out->emplace_back(prefix + "." + std::to_string(i), layers[i].get());
  }
}

void WalkEncoderLayer(const std::string& prefix,
                      const TransformerEncoderLayer& layer,
                      std::vector<std::pair<std::string, const Linear*>>* out) {
  const auto& mha = layer.attention();
  out->emplace_back(prefix + ".q_proj", &mha.q_proj());
  out->emplace_back(prefix + ".k_proj", &mha.k_proj());
  out->emplace_back(prefix + ".v_proj", &mha.v_proj());
  out->emplace_back(prefix + ".out_proj", &mha.out_proj());
  out->emplace_back(prefix + ".ff1", &layer.ff1());
  out->emplace_back(prefix + ".ff2", &layer.ff2());
}

int64_t MaxTokens(const core::TreeOfChains& chains) {
  int64_t mx = 0;
  for (const core::RAChain& c : chains) mx = std::max(mx, c.length() + 3);
  return mx;
}

}  // namespace

const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return "fp64";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "fp64";
}

bool ParsePrecision(const std::string& text, Precision* out) {
  CF_CHECK(out != nullptr);
  if (text == "fp64" || text == "fp32") {
    *out = Precision::kFp64;
    return true;
  }
  if (text == "bf16") {
    *out = Precision::kBf16;
    return true;
  }
  if (text == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

std::vector<std::pair<std::string, const Linear*>> QuantizableLinears(
    const core::ChainsFormerModel& model) {
  std::vector<std::pair<std::string, const Linear*>> out;
  const core::ChainEncoder& enc = model.encoder();
  CF_CHECK(enc.encoder_type() == core::EncoderType::kTransformer)
      << "quantization requires the Transformer chain encoder";
  const auto& layers = enc.transformer().layers();
  for (size_t i = 0; i < layers.size(); ++i) {
    WalkEncoderLayer("encoder.layer" + std::to_string(i), *layers[i], &out);
  }
  if (enc.use_numerical_aware()) {
    WalkMlp("encoder.mlp_alpha", enc.mlp_alpha(), &out);
    WalkMlp("encoder.mlp_beta", enc.mlp_beta(), &out);
  }
  const core::NumericalReasoner& reasoner = model.reasoner();
  WalkMlp("reasoner.projection_mlp", reasoner.projection_mlp(), &out);
  if (reasoner.use_chain_weighting()) {
    const auto& tf = reasoner.treeformer().layers();
    for (size_t i = 0; i < tf.size(); ++i) {
      WalkEncoderLayer("reasoner.treeformer.layer" + std::to_string(i),
                       *tf[i], &out);
    }
    WalkMlp("reasoner.weight_mlp", reasoner.weight_mlp(), &out);
  }
  return out;
}

QuantStore BuildQuantStore(const core::ChainsFormerModel& model) {
  QuantStore store;
  for (const auto& [name, lin] : QuantizableLinears(model)) {
    QuantizedLinear q;
    q.name = name;
    q.in = lin->in_features();
    q.out = lin->out_features();
    q.codes.resize(static_cast<size_t>(q.in * q.out));
    q.scale.resize(static_cast<size_t>(q.out));
    tensor::kernels::QuantizeWeightsInt8(q.in, q.out,
                                         lin->weight().data().data(),
                                         q.codes.data(), q.scale.data());
    store.linears.push_back(std::move(q));
  }
  return store;
}

void CalibrateQuantStore(const core::ChainsFormerModel& model,
                         const std::vector<core::Query>& queries,
                         QuantStore* store) {
  CF_CHECK(store != nullptr);
  // One compiled plan + reusable executor per exact (k, max_tokens)
  // geometry; calibration runs offline so there is no need for the serving
  // runtime's bucketing or pooling.
  std::map<std::pair<int64_t, int64_t>,
           std::pair<std::shared_ptr<const Plan>, std::unique_ptr<PlanExecutor>>>
      plans;
  double sum_abs = 0.0;
  int64_t n = 0;
  for (const core::Query& query : queries) {
    const core::TreeOfChains chains = model.RetrieveChains(query);
    if (chains.empty()) continue;
    const std::vector<core::BatchPrediction> eager =
        model.PredictOnChainSets({query}, {&chains});
    const int64_t k = static_cast<int64_t>(chains.size());
    const int64_t len = MaxTokens(chains);
    auto& slot = plans[{k, len}];
    if (slot.first == nullptr) {
      slot.first = std::make_shared<const Plan>(
          CompilePlan(model, k, len, Precision::kInt8, store));
      slot.second = std::make_unique<PlanExecutor>(slot.first);
    }
    const double compiled_norm = std::clamp(
        static_cast<double>(slot.second->RunNormalized(chains)), -0.1, 1.1);
    CF_CHECK_LT(static_cast<size_t>(query.attribute),
                model.train_stats().size());
    const double eager_norm =
        model.train_stats()[static_cast<size_t>(query.attribute)].Normalize(
            eager[0].value);
    sum_abs += std::abs(compiled_norm - eager_norm);
    ++n;
  }
  store->mae_delta = n > 0 ? sum_abs / static_cast<double>(n) : 0.0;
  store->calibration_queries = n;
}

}  // namespace graph
}  // namespace chainsformer
