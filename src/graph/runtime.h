#ifndef CHAINSFORMER_GRAPH_RUNTIME_H_
#define CHAINSFORMER_GRAPH_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/chainsformer.h"
#include "graph/executor.h"
#include "graph/plan.h"
#include "util/metrics.h"
#include "util/sync.h"

namespace chainsformer {
namespace graph {

/// Construction-time knobs for the runtime's reduced-precision serving
/// modes (DESIGN §6g).
struct RuntimeOptions {
  Precision precision = Precision::kFp64;
  // Maximum |normalized compiled - normalized eager| the first-use parity
  // gate accepts in a quantized mode; a negative value selects the
  // per-precision default (kInt8: 0.05, kBf16: 0.01). Ignored for kFp64,
  // which keeps the bitwise gate.
  double verify_tolerance = -1.0;
  // Required when precision == kInt8: the checkpoint's quantized weights
  // (rows must match this model's QuantizableLinears walk).
  std::shared_ptr<const QuantStore> quant;
};

/// Serves single-query predictions from compiled static plans with a small
/// per-geometry plan cache (DESIGN §6f).
///
/// Requests are bucketed by (k, padded max_len): k is exact, the token
/// length rounds up to the next multiple of two so nearby lengths share a
/// plan. The first request of a bucket traces one eager PredictOnChainSets
/// forward, compiles the plan, cross-checks the compiler's op skeleton
/// against the trace, and gates the bucket on the compiled result matching
/// the eager prediction bit-for-bit; any mismatch pins the bucket to the
/// eager path permanently (plan.verify_failures). Subsequent requests pop a
/// warmed PlanExecutor from the bucket's idle pool and run allocation-free.
///
/// Counters: plan.cache_hits / plan.cache_misses / plan.verify_failures;
/// gauge plan.arena_bytes totals the arena footprint of live plans.
///
/// Thread-safe: Predict may be called concurrently once the model is
/// trained; the model must outlive the runtime.
class StaticGraphRuntime {
 public:
  /// Per-call timing facts Predict reports back to a caller that is
  /// building a request trace (the serving layer's verify span).
  struct PredictStats {
    int64_t verify_us = 0;   // trace+compile+bitwise-verify gate, if it ran
    bool compiled = false;   // served from a warmed compiled plan
    bool bucket_miss = false;  // this call paid the bucket's first-use gate
  };

  /// Point-in-time facts about one cached plan bucket (admin endpoint).
  struct BucketStats {
    int64_t k = 0;
    int64_t max_len = 0;
    bool ready = false;
    bool eager_fallback = false;
    int64_t idle_executors = 0;
    int64_t arena_bytes = 0;
    // Numeric mode actually serving this bucket ("fp64" for a bucket the
    // parity gate pinned to the eager path) and the verify tolerance in use.
    const char* precision = "fp64";
    double verify_tolerance = 0.0;
  };

  explicit StaticGraphRuntime(const core::ChainsFormerModel& model);
  StaticGraphRuntime(const core::ChainsFormerModel& model,
                     RuntimeOptions options);

  StaticGraphRuntime(const StaticGraphRuntime&) = delete;
  StaticGraphRuntime& operator=(const StaticGraphRuntime&) = delete;

  /// True when the model's geometry is supported (Transformer chain
  /// encoder). Unsupported models must keep using the eager path.
  static bool Supports(const core::ChainsFormerModel& model);

  /// Bitwise equivalent of
  /// model.PredictOnChainSets({query}, {&chains})[0]: same value, same
  /// has_evidence, including the empty-chain-set fallback. When `stats` is
  /// non-null it is filled with this call's timing facts.
  core::BatchPrediction Predict(const core::Query& query,
                                const core::TreeOfChains& chains,
                                PredictStats* stats = nullptr) const;

  /// Snapshot of every cached plan bucket, ordered by (k, max_len).
  std::vector<BucketStats> Stats() const;

  Precision precision() const { return options_.precision; }
  double verify_tolerance() const { return tolerance_; }

 private:
  struct Entry {
    cf::Mutex mu{"graph.plan_bucket"};
    bool ready CF_GUARDED_BY(mu) = false;
    bool eager_fallback CF_GUARDED_BY(mu) = false;
    std::shared_ptr<const Plan> plan CF_GUARDED_BY(mu);
    std::vector<std::unique_ptr<PlanExecutor>> idle CF_GUARDED_BY(mu);
  };

  core::BatchPrediction RunCompiled(Entry& entry, const core::Query& query,
                                    const core::TreeOfChains& chains) const;
  core::BatchPrediction Denormalized(const core::Query& query,
                                     float normalized) const;

  const core::ChainsFormerModel& model_;
  const RuntimeOptions options_;
  double tolerance_ = 0.0;
  metrics::Counter* hits_;
  metrics::Counter* misses_;
  metrics::Counter* verify_failures_;
  metrics::Counter* verify_micros_;
  metrics::Counter* quant_fallbacks_;
  metrics::Gauge* arena_bytes_;
  mutable std::atomic<int64_t> arena_bytes_total_{0};
  mutable cf::Mutex mu_{"graph.plan_cache"};
  mutable std::map<std::pair<int64_t, int64_t>, std::shared_ptr<Entry>> plans_
      CF_GUARDED_BY(mu_);
};

}  // namespace graph
}  // namespace chainsformer

#endif  // CHAINSFORMER_GRAPH_RUNTIME_H_
