#ifndef CHAINSFORMER_GRAPH_QUANT_H_
#define CHAINSFORMER_GRAPH_QUANT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace chainsformer {
namespace core {
class ChainsFormerModel;
struct Query;
}  // namespace core
namespace tensor {
namespace nn {
class Linear;
}  // namespace nn
}  // namespace tensor
}  // namespace chainsformer

namespace chainsformer {
namespace graph {

/// Numeric mode a compiled plan's Linear (kGemm) steps run in (DESIGN §6g).
/// Everything else — Poincare distances, LayerNorm, softmax, the batched
/// attention matmuls — stays in the high-precision kernels regardless.
///
/// `kFp64` is the historical name for the full-precision path (fp32 storage
/// with double accumulation in the reductions); the CLI accepts "fp32" as an
/// alias. `kBf16` stores weights as bfloat16 and accumulates in fp32.
/// `kInt8` runs per-output-channel symmetric int8 weights against
/// dynamically quantized 7-bit activations with int32 accumulation.
enum class Precision : uint8_t { kFp64 = 0, kBf16 = 1, kInt8 = 2 };

/// Canonical lowercase name ("fp64", "bf16", "int8").
const char* PrecisionName(Precision p);

/// Parses "fp64" / "fp32" (alias) / "bf16" / "int8". Returns false on any
/// other spelling, leaving *out untouched.
bool ParsePrecision(const std::string& text, Precision* out);

/// Per-output-channel symmetric int8 quantization of one frozen Linear's
/// weight matrix, in checkpoint form: codes are the plain [in, out]
/// row-major int8 matrix (clamped to [-127, 127] so the AVX2 maddubs pair
/// sum cannot saturate int16), scale[j] = maxabs(column j) / 127.
struct QuantizedLinear {
  std::string name;  // canonical dotted path (see QuantizableLinears)
  int64_t in = 0;
  int64_t out = 0;
  std::vector<int8_t> codes;  // [in * out]
  std::vector<float> scale;   // [out]
};

/// Every quantized Linear of a frozen model plus the calibration facts the
/// serve-time accuracy gate checks. Saved as the optional "quant_int8"
/// checkpoint block; loaded read-only and shared across plan buckets.
struct QuantStore {
  std::vector<QuantizedLinear> linears;
  // Mean |normalized int8 prediction - normalized eager prediction| over the
  // calibration queries (normalized space, so it is attribute-scale-free and
  // directly comparable to the runtime verify tolerance). 0 when no
  // calibration ran.
  double mae_delta = 0.0;
  int64_t calibration_queries = 0;
};

/// The frozen Linears the static-graph compiler lowers to kGemm steps, in a
/// stable canonical order with dotted names. This walk is the single source
/// of truth shared by BuildQuantStore (save time) and CompilePlan (load
/// time); both sides iterate it so the store rows line up with the plan's
/// weight pointers by construction.
std::vector<std::pair<std::string, const tensor::nn::Linear*>>
QuantizableLinears(const core::ChainsFormerModel& model);

/// Quantizes every quantizable Linear of the frozen model. Does not
/// calibrate; mae_delta stays 0 until CalibrateQuantStore runs.
QuantStore BuildQuantStore(const core::ChainsFormerModel& model);

/// Measures the int8 static-graph accuracy drift on held-out queries:
/// compiles int8 plans from `store`, predicts each query with both the int8
/// plan and the eager full-precision path, and records the mean absolute
/// difference of the normalized predictions into store->mae_delta /
/// store->calibration_queries. Queries with no retrievable chains are
/// skipped (both paths fall back identically).
void CalibrateQuantStore(const core::ChainsFormerModel& model,
                         const std::vector<core::Query>& queries,
                         QuantStore* store);

}  // namespace graph
}  // namespace chainsformer

#endif  // CHAINSFORMER_GRAPH_QUANT_H_
