#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace chainsformer {
namespace metrics {
namespace {

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// %g prints integers without a decimal point and strips trailing zeros,
/// which keeps the JSON stable across platforms for the values we emit.
std::string FormatNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // v <= 1, non-finite negatives, NaN
  const int e = std::ilogb(v);  // floor(log2 v); v > 1 implies e >= 0
  // v lies in [2^e, 2^(e+1)); bucket i covers (2^(i-1), 2^i], so an exact
  // power of two belongs to bucket e and everything above it to e + 1.
  const int idx = v == std::ldexp(1.0, e) ? e : e + 1;
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::UpperBound(int i) { return std::ldexp(1.0, i); }

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instrumented code caches metric pointers in
  // function-local statics, and worker threads may still touch them during
  // static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  cf::MutexLock lock(mu_);
  CF_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  cf::MutexLock lock(mu_);
  CF_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  cf::MutexLock lock(mu_);
  CF_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered with a different kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  cf::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count_.load(std::memory_order_relaxed);
    hs.sum = h->sum_.load(std::memory_order_relaxed);
    hs.min = hs.count > 0 ? h->min_.load(std::memory_order_relaxed) : 0.0;
    hs.max = hs.count > 0 ? h->max_.load(std::memory_order_relaxed) : 0.0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const int64_t n = h->buckets_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      hs.buckets.push_back(
          {i == Histogram::kNumBuckets - 1
               ? std::numeric_limits<double>::infinity()
               : Histogram::UpperBound(i),
           n});
    }
    snap.histograms.push_back(std::move(hs));
  }
  // std::map iteration is already name-sorted; keep that as the contract.
  return snap;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << EscapeJson(snapshot.counters[i].first)
       << "\": " << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << EscapeJson(snapshot.gauges[i].first)
       << "\": " << FormatNumber(snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << EscapeJson(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << FormatNumber(h.sum)
       << ", \"min\": " << FormatNumber(h.min)
       << ", \"max\": " << FormatNumber(h.max) << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"le\": ";
      if (std::isinf(h.buckets[b].upper_bound)) {
        os << "\"+Inf\"";
      } else {
        os << FormatNumber(h.buckets[b].upper_bound);
      }
      os << ", \"count\": " << h.buckets[b].count << "}";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool WriteJsonFile(const std::string& path, const MetricsSnapshot& snapshot) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // An error here surfaces as the open failure below, with the path.
  }
  std::ofstream out(path);
  if (!out.good()) {
    CF_LOG(Error) << "metrics: cannot open " << path << " for writing";
    return false;
  }
  out << ToJson(snapshot);
  return out.good();
}

std::string SummaryTable(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  char line[160];
  if (!snapshot.counters.empty()) {
    os << "-- counters -------------------------------------------------\n";
    for (const auto& [name, v] : snapshot.counters) {
      std::snprintf(line, sizeof(line), "%-44s %14lld\n", name.c_str(),
                    static_cast<long long>(v));
      os << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    os << "-- gauges ---------------------------------------------------\n";
    for (const auto& [name, v] : snapshot.gauges) {
      std::snprintf(line, sizeof(line), "%-44s %14.6g\n", name.c_str(), v);
      os << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    os << "-- histograms -----------------------------------------------\n";
    std::snprintf(line, sizeof(line), "%-32s %10s %10s %10s %10s\n", "name",
                  "count", "mean", "min", "max");
    os << line;
    for (const auto& h : snapshot.histograms) {
      const double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      std::snprintf(line, sizeof(line), "%-32s %10lld %10.4g %10.4g %10.4g\n",
                    h.name.c_str(), static_cast<long long>(h.count), mean,
                    h.min, h.max);
      os << line;
    }
  }
  return os.str();
}

}  // namespace metrics
}  // namespace chainsformer
