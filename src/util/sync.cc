#include "util/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace cf {
namespace {

// Default: validate in debug trees (Debug/Tsan/Asan carry no NDEBUG), stay
// out of the way in release. CF_SYNC_VALIDATE=0/1 overrides either way.
bool InitialValidationState() {
  const char* env = std::getenv("CF_SYNC_VALIDATE");
  if (env != nullptr && *env != '\0') return std::strcmp(env, "0") != 0;
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

/// One acquisition a thread currently holds.
struct Held {
  const void* mu;
  int node;  // interned site id
  int rank;
  const char* name;
};

/// Process-global lock-order graph over interned site names. An edge a -> b
/// records "b was acquired while a was held", together with the acquiring
/// thread's held stack at the moment the edge was first seen (the evidence
/// printed when a cycle closes).
struct OrderGraph {
  std::mutex mu;  // cf-lint: allow(naked-mutex-outside-sync)
  std::map<std::string, int> ids;
  std::vector<std::string> names;                 // id -> name
  std::map<int, std::set<int>> edges;             // from -> to
  std::map<std::pair<int, int>, std::string> edge_stacks;
  std::vector<std::vector<Held>*> stacks;         // every thread's HeldStack
};

OrderGraph& Graph() {
  static OrderGraph* g = new OrderGraph();  // leaked: see metrics.cc
  return *g;
}

/// The per-thread held-lock set, in acquisition order ("acquisition stack").
/// Heap-allocated and never freed: the stack must outlive any thread_local
/// destructor that still releases a cf::Mutex on this thread. Parked in the
/// (equally immortal) order graph so the memory stays reachable — one stack
/// per thread ever created, not a per-thread leak report.
std::vector<Held>& HeldStack() {
  thread_local std::vector<Held>* stack = [] {
    auto* s = new std::vector<Held>();
    OrderGraph& g = Graph();
    std::lock_guard<std::mutex> lock(g.mu);  // cf-lint: allow(naked-mutex-outside-sync)
    g.stacks.push_back(s);
    return s;
  }();
  return *stack;
}

/// "a -> b -> c" over the current thread's held stack plus the lock being
/// acquired — the validator's notion of an acquisition stack.
std::string DescribeStack(const std::vector<Held>& held, const char* acquiring) {
  std::ostringstream os;
  for (const Held& h : held) os << "'" << h.name << "' -> ";
  os << "'" << acquiring << "'";
  return os.str();
}

/// True when `to` can reach `target` in the edge set (DFS; the graph is a
/// handful of nodes, recursion depth is bounded by its size).
bool Reaches(const OrderGraph& g, int from, int target,
             std::set<int>& visited) {
  if (from == target) return true;
  if (!visited.insert(from).second) return false;
  auto it = g.edges.find(from);
  if (it == g.edges.end()) return false;
  for (int next : it->second) {
    if (Reaches(g, next, target, visited)) return true;
  }
  return false;
}

}  // namespace

namespace sync_internal {

std::atomic<bool> g_validation_enabled{InitialValidationState()};

void OnAcquire(const void* mu, const char* name, int rank, SiteId* site) {
  std::vector<Held>& held = HeldStack();
  OrderGraph& g = Graph();

  int node = site->id.load(std::memory_order_relaxed);
  // Fatal diagnostics are built under the graph mutex but logged after
  // releasing it: CF_LOG takes the (cf::Mutex) logging sink lock, which
  // would re-enter the validator.
  std::string fatal;
  {
    std::lock_guard<std::mutex> lock(g.mu);  // cf-lint: allow(naked-mutex-outside-sync)
    if (node < 0) {
      auto [it, inserted] = g.ids.try_emplace(name, static_cast<int>(g.names.size()));
      if (inserted) g.names.push_back(name);
      node = it->second;
      site->id.store(node, std::memory_order_relaxed);
    }
    for (const Held& h : held) {
      if (h.node == node) {
        // Same site already held: with distinct instances (e.g. two cache
        // shards) the acquisition order between them is unconstrained, so
        // this is the two-lock cycle in its tightest form; with the same
        // instance it is a guaranteed self-deadlock.
        std::ostringstream os;
        os << "sync: lock-order violation: acquiring '" << name
           << "' while already holding '" << h.name
           << "' (same lock-order site" << (h.mu == mu ? ", same instance" : "")
           << "); acquisition stack: " << DescribeStack(held, name);
        fatal = os.str();
        break;
      }
      if (h.rank != 0 && rank != 0 && rank <= h.rank) {
        std::ostringstream os;
        os << "sync: lock-order rank violation: acquiring '" << name
           << "' (rank " << rank << ") while holding '" << h.name << "' (rank "
           << h.rank << "); ranked mutexes must be acquired in increasing "
           << "rank order; acquisition stack: " << DescribeStack(held, name);
        fatal = os.str();
        break;
      }
      const std::pair<int, int> edge{h.node, node};
      if (g.edges[h.node].insert(node).second) {
        g.edge_stacks[edge] = DescribeStack(held, name);
        // New edge h.node -> node: a cycle exists iff node already reached
        // h.node through previously recorded acquisitions.
        std::set<int> visited;
        if (Reaches(g, node, h.node, visited)) {
          const auto back = g.edge_stacks.find({node, h.node});
          std::ostringstream os;
          os << "sync: lock-order cycle (potential deadlock) between '"
             << h.name << "' and '" << name << "': this thread acquires '"
             << name << "' while holding '" << h.name
             << "' [acquisition stack: " << DescribeStack(held, name) << "]"
             << ", but the reverse order was recorded earlier";
          if (back != g.edge_stacks.end()) {
            os << " [acquisition stack: " << back->second << "]";
          } else {
            os << " (through intermediate locks)";
          }
          fatal = os.str();
        }
      }
      if (!fatal.empty()) break;
    }
  }
  if (!fatal.empty()) {
    // Logging itself takes the sink mutex; if THAT acquisition is the one
    // being diagnosed, re-entering CF_LOG would recurse forever. Fall back
    // to bare stderr for the nested report.
    thread_local bool reporting = false;
    if (reporting) {
      std::fprintf(stderr, "%s\n", fatal.c_str());
      std::abort();
    }
    reporting = true;
    CF_LOG(Fatal) << fatal;
  }
  held.push_back(Held{mu, node, rank, name});
}

void OnRelease(const void* mu) {
  std::vector<Held>& held = HeldStack();
  // Locks usually release LIFO; scan from the back so out-of-order unlocks
  // (hand-over-hand patterns) still find their entry. A miss means the
  // acquisition predates validation being enabled — ignore it.
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mu == mu) {
      held.erase(held.begin() + static_cast<long>(i - 1));
      return;
    }
  }
}

}  // namespace sync_internal

void SetDeadlockValidation(bool enabled) {
  sync_internal::g_validation_enabled.store(enabled, std::memory_order_relaxed);
}

bool DeadlockValidationEnabled() { return sync_internal::ValidationEnabled(); }

void ResetLockOrderGraphForTesting() {
  OrderGraph& g = Graph();
  std::lock_guard<std::mutex> lock(g.mu);  // cf-lint: allow(naked-mutex-outside-sync)
  g.edges.clear();
  g.edge_stacks.clear();
}

int LockOrderEdgeCountForTesting() {
  OrderGraph& g = Graph();
  std::lock_guard<std::mutex> lock(g.mu);  // cf-lint: allow(naked-mutex-outside-sync)
  int n = 0;
  for (const auto& [from, tos] : g.edges) n += static_cast<int>(tos.size());
  return n;
}

}  // namespace cf
