#ifndef CHAINSFORMER_UTIL_NET_H_
#define CHAINSFORMER_UTIL_NET_H_

// Nonblocking socket helpers and a minimal epoll reactor (DESIGN §6i).
//
// This header's .cc is the one sanctioned home of blocking socket syscalls:
// the cf_lint rule `blocking-io-outside-net` rejects global-scope ::read /
// ::write / ::recv / ::send / ::accept / ::connect anywhere else under
// src/, so every byte of socket I/O flows through this TU. That keeps the
// layers above it (serve/async_server, serve/router, serve/admin) honest:
// they compose nonblocking state machines out of these primitives instead
// of quietly regressing into thread-per-connection blocking loops — the
// exact bug the epoll front-end exists to fix.
//
// Two styles of use:
//   * Client side (router → shard, admin scrapes): blocking sockets with
//     poll-bounded waits (ConnectTcp / SendLine / RecvLine take millisecond
//     budgets, so a dead peer costs a timeout, never a hang).
//   * Server side (AsyncNdjsonServer): nonblocking fds driven by EpollLoop;
//     ReadSome/WriteSome never wait, EAGAIN is a normal return.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "util/sync.h"

namespace chainsformer {
namespace net {

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = ephemeral; read
/// the assignment back with BoundPort). Returns the fd, or -1 with errno
/// set. SO_REUSEADDR is on; the socket is blocking — callers that hand it
/// to an EpollLoop flip it with SetNonBlocking.
int ListenTcp(int port, int backlog = 64);

/// Bound port of a listening socket, or -1.
int BoundPort(int fd);

/// Connects to `host`:`port` (numeric IPv4; "localhost" accepted) within
/// `timeout_ms`. Returns a connected *blocking* fd with TCP_NODELAY set, or
/// -1 on refusal/timeout.
int ConnectTcp(const std::string& host, int port, int timeout_ms);

/// Puts `fd` into O_NONBLOCK mode. Returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// One accept() on a listener (blocking or not). Returns the new fd, or -1
/// (errno EAGAIN/EWOULDBLOCK when a nonblocking listener has no pending
/// connection — a normal return, not an error).
int AcceptConn(int listener);

/// One read()/write() attempt, retrying EINTR only. Nonblocking fds return
/// -1 with errno EAGAIN instead of waiting; check IsWouldBlock(errno).
ssize_t ReadSome(int fd, char* buf, size_t len);
ssize_t WriteSome(int fd, const char* buf, size_t len);

/// True when `err` (an errno value) means "retry later on a nonblocking fd".
bool IsWouldBlock(int err);

/// Writes the whole buffer to a blocking fd (EINTR-retrying). Returns false
/// on any write error (peer gone).
bool WriteAll(int fd, const char* data, size_t len);

/// Sends `line` plus a trailing '\n' (blocking fd).
bool SendLine(int fd, const std::string& line);

/// Reads from `fd` into `*buffer` until it holds a '\n', then moves the
/// first line (without the '\n') into `*line`, leaving any over-read bytes
/// in `*buffer` for the next call. Waits at most `timeout_ms` total
/// (poll-bounded; <0 = no limit). Returns false on timeout, EOF or error.
bool RecvLine(int fd, std::string* buffer, std::string* line, int timeout_ms);

/// poll()s `fd` for readability. Returns true when readable within
/// `timeout_ms` (<0 = wait forever); false on timeout or poll error.
bool WaitReadable(int fd, int timeout_ms);

/// close() / shutdown(SHUT_RDWR), ignoring errors (teardown helpers).
void CloseFd(int fd);
void ShutdownFd(int fd);

/// Creates a nonblocking close-on-exec pipe. Returns false on failure.
bool MakePipe(int fds[2]);

/// Writes one byte to `fd`, EINTR-retrying once. Async-signal-safe (a bare
/// write(2)); signal handlers use this to wake a WaitReadable'ing main
/// thread — the self-pipe idiom behind graceful SIGINT/SIGTERM shutdown.
void SignalSafeWriteByte(int fd);

/// Minimal single-threaded epoll reactor.
///
/// Ownership model: exactly one thread calls Run(); Add/Mod/Del and the
/// handler map are loop-thread-only (Add before Run() from the owning
/// thread is also fine — Run has not started consuming yet). Other threads
/// interact through exactly two thread-safe entry points, Post() (queues a
/// closure the loop runs on its own thread, waking it via a pipe) and
/// Stop(). This keeps fd state single-threaded — no lock covers the fd →
/// handler map because only one thread ever touches it.
class EpollLoop {
 public:
  /// Handler for one registered fd; receives the epoll event mask.
  using Handler = std::function<void(uint32_t events)>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// False when epoll/pipe creation failed at construction; a dead loop
  /// no-ops every other call.
  bool ok() const { return epoll_fd_ >= 0; }

  /// Registers `fd` with `events` (EPOLLIN etc). Loop thread (or pre-Run)
  /// only. The loop never closes registered fds — callers own them.
  bool Add(int fd, uint32_t events, Handler handler);
  /// Changes the event mask of a registered fd. Loop thread only.
  bool Mod(int fd, uint32_t events);
  /// Unregisters `fd` (does not close it). Safe from inside a handler, even
  /// the fd's own. Loop thread only.
  void Del(int fd);

  /// Runs the event loop until Stop(). Dispatches each ready fd to its
  /// handler, then drains the Post() queue.
  void Run();

  /// Queues `fn` to run on the loop thread and wakes the loop. Thread-safe.
  void Post(std::function<void()> fn);
  /// Makes Run() return after the current dispatch round. Thread-safe.
  void Stop();

 private:
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::atomic<bool> stop_{false};
  // Loop-thread-only by the ownership model above (no lock by design).
  std::unordered_map<int, Handler> handlers_;

  cf::Mutex posted_mu_{"net.posted"};
  std::vector<std::function<void()>> posted_ CF_GUARDED_BY(posted_mu_);
};

}  // namespace net
}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_NET_H_
