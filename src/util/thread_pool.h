#ifndef CHAINSFORMER_UTIL_THREAD_POOL_H_
#define CHAINSFORMER_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace chainsformer {

/// Fixed-size worker pool used to parallelize per-query work (retrieval,
/// filtering, evaluation). ChainsFormer's sequence-based design makes every
/// query independent, so queries distribute trivially (paper §IV-G).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` for execution.
  void Schedule(std::function<void()> fn);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n), spread across the pool, and waits.
  /// One chunk per worker; use the grain overload to control chunking.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Chunked variant: schedules one task per chunk of at most `grain`
  /// indices (grain 0 is treated as 1). More chunks than workers gives
  /// dynamic load balancing for irregular per-index cost. Safe with n == 0
  /// (no-op) and on a pool of size 1 (runs inline on the caller).
  void ParallelFor(size_t n, size_t grain, const std::function<void(size_t)>& fn);

  /// Range form of the chunked variant: fn(begin, end) is called once per
  /// chunk with disjoint [begin, end) sub-ranges of [0, n). Avoids the
  /// per-index std::function call on hot numeric loops.
  void ParallelForRanges(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  cf::Mutex mu_{"threadpool.mu"};
  std::queue<std::function<void()>> queue_ CF_GUARDED_BY(mu_);
  size_t pending_ CF_GUARDED_BY(mu_) = 0;
  bool shutdown_ CF_GUARDED_BY(mu_) = false;
  cf::CondVar work_cv_;
  cf::CondVar done_cv_;
};

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_THREAD_POOL_H_
