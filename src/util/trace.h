#ifndef CHAINSFORMER_UTIL_TRACE_H_
#define CHAINSFORMER_UTIL_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace chainsformer {
namespace trace {

/// Low-overhead span tracer for the prediction/training pipeline. Scopes are
/// annotated with CF_TRACE_SCOPE("stage"); completed spans land in
/// per-thread ring buffers (steady-clock ticks, thread id, nesting depth)
/// and are drained on demand into Chrome trace-event JSON that loads in
/// chrome://tracing or Perfetto.
///
/// Tracing is OFF by default. While disabled, an instrumented scope costs
/// one relaxed atomic load and a branch — no clock reads, no locks, no
/// allocation — so hot paths can stay instrumented permanently
/// (bench/perf_microbench asserts this stays below a nanosecond budget).

/// Spans each thread can buffer before the oldest are overwritten.
constexpr size_t kRingCapacity = 1 << 14;

namespace internal {
extern std::atomic<bool> g_enabled;

/// Out-of-line slow path used only while tracing is enabled.
void BeginSpan(const char* name, uint64_t* start_ns, int* depth);
void EndSpan(const char* name, uint64_t start_ns, int depth);
}  // namespace internal

/// Nanoseconds on the process-local steady clock (zero near process start;
/// the same clock every span timestamp uses). Cheap enough to call
/// unconditionally on the serve hot path.
uint64_t NowNs();

/// Request-scoped facts attached to a span emitted with EmitSpan. Fields at
/// their defaults are omitted from the drained JSON. `cause` must be a
/// string literal (it is stored, not copied).
struct SpanAnnotations {
  uint64_t trace_id = 0;       // owning request (0 = not request-scoped)
  int64_t batch_id = -1;       // micro-batch the request rode in
  int batch_size = 0;          // size of that micro-batch
  bool dedup_collapsed = false;  // answered by another request's forward
  const char* cause = nullptr;   // degradation cause ("deadline", ...)
};

/// Records a completed span from explicit timestamps taken with NowNs().
/// Used where a scope cannot bracket the phase being traced — e.g. a
/// request's queue-wait measured across threads. The annotations tag the
/// span with the owning request so Perfetto can filter one request's whole
/// timeline; `name` must be a string literal. No-op while tracing is
/// disabled.
void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
              const SpanAnnotations& ann);
inline void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
                     uint64_t trace_id = 0) {
  SpanAnnotations ann;
  ann.trace_id = trace_id;
  EmitSpan(name, start_ns, end_ns, ann);
}

/// Turns span collection on/off process-wide. Already-buffered spans are
/// kept; use Clear() to drop them.
void SetEnabled(bool enabled);

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// RAII span. `name` must outlive the tracer (string literals only — the
/// CF_TRACE_SCOPE macro enforces the idiom).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name), active_(Enabled()) {
    if (active_) internal::BeginSpan(name_, &start_ns_, &depth_);
  }
  ~ScopedSpan() {
    if (active_) internal::EndSpan(name_, start_ns_, depth_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool active_;
};

/// Total spans currently buffered across all threads (completed, undrained).
size_t BufferedSpans();

/// Spans dropped so far to ring-buffer wraparound (oldest-first eviction).
uint64_t DroppedSpans();

/// Discards every buffered span (and the drop counter) without emitting.
void Clear();

/// Moves every buffered span out of the ring buffers and serializes them as
/// a Chrome trace-event JSON object ({"traceEvents": [...]}, "X" complete
/// events with microsecond timestamps, one tid per traced thread).
std::string DrainChromeTraceJson();

/// Writes DrainChromeTraceJson() to `path`, creating missing parent
/// directories. Returns false (and logs the path) on I/O failure.
bool WriteChromeTrace(const std::string& path);

}  // namespace trace
}  // namespace chainsformer

#define CF_TRACE_CONCAT_INNER_(a, b) a##b
#define CF_TRACE_CONCAT_(a, b) CF_TRACE_CONCAT_INNER_(a, b)

/// Traces the enclosing scope as a span named `name` (a string literal).
#define CF_TRACE_SCOPE(name) \
  ::chainsformer::trace::ScopedSpan CF_TRACE_CONCAT_(cf_trace_span_, \
                                                     __LINE__)(name)

#endif  // CHAINSFORMER_UTIL_TRACE_H_
