#include "util/thread_pool.h"

#include <algorithm>

#include "util/metric_names.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chainsformer {
namespace {

metrics::Counter* TasksScheduledCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kThreadpoolTasksScheduled);
  return c;
}

metrics::Counter* InlineRunsCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kThreadpoolInlineRuns);
  return c;
}

metrics::Counter* RangeTasksCounter() {
  static auto* c =
      metrics::MetricsRegistry::Global().GetCounter(metrics::names::kThreadpoolRangeTasks);
  return c;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    cf::MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  TasksScheduledCounter()->Increment();
  {
    cf::MutexLock lock(mu_);
    queue_.push(std::move(fn));
    ++pending_;
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  cf::MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this]() CF_REQUIRES(mu_) { return pending_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  const size_t workers = std::max<size_t>(threads_.size(), 1);
  ParallelFor(n, (n + workers - 1) / workers, fn);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForRanges(n, grain, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForRanges(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (threads_.size() <= 1 || n <= grain) {
    InlineRunsCounter()->Increment();
    fn(0, n);
    return;
  }
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(n, begin + grain);
    RangeTasksCounter()->Increment();
    Schedule([begin, end, &fn] {
      CF_TRACE_SCOPE("threadpool.range_task");
      fn(begin, end);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      cf::MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this]() CF_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      cf::MutexLock lock(mu_);
      --pending_;
      if (pending_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace chainsformer
