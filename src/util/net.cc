#include "util/net.h"

// The sanctioned blocking-syscall TU (see net.h): every ::read/::write/
// ::accept/::connect in src/ lives here, enforced by the cf_lint rule
// `blocking-io-outside-net`.

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/stopwatch.h"

namespace chainsformer {
namespace net {

namespace {

/// Remaining budget of a millisecond deadline given elapsed time; -1 stays
/// -1 (no limit), exhausted budgets clamp to 0 so poll() returns at once.
int RemainingMs(int timeout_ms, int64_t elapsed_ms) {
  if (timeout_ms < 0) return -1;
  const int64_t left = timeout_ms - elapsed_ms;
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

int ListenTcp(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

int ConnectTcp(const std::string& host, int port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  // Nonblocking connect + poll-for-writable bounds the wait; the fd goes
  // back to blocking mode once connected (client-side callers want the
  // simple poll-then-read style of RecvLine).
  SetNonBlocking(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc < 0) {
    pollfd p{fd, POLLOUT, 0};
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int AcceptConn(int listener) {
  int fd;
  do {
    fd = ::accept(listener, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

ssize_t ReadSome(int fd, char* buf, size_t len) {
  ssize_t n;
  do {
    n = ::read(fd, buf, len);
  } while (n < 0 && errno == EINTR);
  return n;
}

ssize_t WriteSome(int fd, const char* buf, size_t len) {
  ssize_t n;
  do {
    n = ::write(fd, buf, len);
  } while (n < 0 && errno == EINTR);
  return n;
}

bool IsWouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = WriteSome(fd, data + off, len - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return WriteAll(fd, framed.data(), framed.size());
}

bool RecvLine(int fd, std::string* buffer, std::string* line, int timeout_ms) {
  Stopwatch sw;
  char chunk[4096];
  while (true) {
    const size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buffer, 0, nl);
      buffer->erase(0, nl + 1);
      return true;
    }
    const int left = RemainingMs(timeout_ms, sw.ElapsedMicros() / 1000);
    if (left == 0) return false;
    if (!WaitReadable(fd, left)) return false;
    const ssize_t n = ReadSome(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && IsWouldBlock(errno)) continue;  // raced another reader
      return false;                                // EOF or hard error
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

bool WaitReadable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool MakePipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  for (int i = 0; i < 2; ++i) {
    SetNonBlocking(fds[i]);
    ::fcntl(fds[i], F_SETFD, FD_CLOEXEC);
  }
  return true;
}

void SignalSafeWriteByte(int fd) {
  const char b = 1;
  // One retry on EINTR; a full pipe already guarantees a pending wakeup,
  // so a failed retry is fine to ignore.
  ssize_t n = ::write(fd, &b, 1);
  if (n < 0 && errno == EINTR) n = ::write(fd, &b, 1);
  (void)n;
}

EpollLoop::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  int fds[2] = {-1, -1};
  if (epoll_fd_ >= 0 && !MakePipe(fds)) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (epoll_fd_ < 0) return;
  wake_read_ = fds[0];
  wake_write_ = fds[1];
  // The wake pipe is the one fd the loop registers for itself: Post()/
  // Stop() write a byte, the loop drains it and runs the posted queue.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev);
}

EpollLoop::~EpollLoop() {
  CloseFd(wake_read_);
  CloseFd(wake_write_);
  CloseFd(epoll_fd_);
}

bool EpollLoop::Add(int fd, uint32_t events, Handler handler) {
  if (!ok()) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::move(handler);
  return true;
}

bool EpollLoop::Mod(int fd, uint32_t events) {
  if (!ok()) return false;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EpollLoop::Del(int fd) {
  if (!ok()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EpollLoop::Post(std::function<void()> fn) {
  {
    cf::MutexLock lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  SignalSafeWriteByte(wake_write_);
}

void EpollLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  SignalSafeWriteByte(wake_write_);
}

void EpollLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    cf::MutexLock lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EpollLoop::Run() {
  if (!ok()) return;
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, -1);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_) {
        char sink[256];
        while (ReadSome(wake_read_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      // Re-look up per event: a handler earlier in this round may have
      // Del()'d this fd (e.g. the peer closed two fds in one batch).
      const auto it = handlers_.find(fd);
      if (it != handlers_.end()) it->second(events[i].events);
    }
    DrainPosted();
  }
  // One final drain so a Stop() racing a last Post() cannot strand work.
  DrainPosted();
}

}  // namespace net
}  // namespace chainsformer
