#ifndef CHAINSFORMER_UTIL_METRICS_H_
#define CHAINSFORMER_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"
#include "util/sync.h"

namespace chainsformer {
namespace metrics {

/// Process-wide counters, gauges and histograms for the ChainsFormer
/// pipeline (retrieval / filter / encoder / reasoner), the training loop and
/// the kernel layer. Registration takes a mutex once; after that every
/// update is a handful of relaxed atomic operations, so instrumented hot
/// paths stay lock-free. The idiom in instrumented code is a cached static
/// pointer:
///
///   static auto* walks = metrics::MetricsRegistry::Global().GetCounter(
///       "retrieval.walks");
///   walks->Increment();
///
/// Metric objects live for the process lifetime (the registry is never
/// destroyed), so cached pointers stay valid even during static teardown of
/// worker pools.

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (e.g. current loss).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Exponential histogram with power-of-two buckets: bucket 0 collects
/// v <= 1, bucket i (0 < i < kNumBuckets-1) collects 2^(i-1) < v <= 2^i,
/// and the last bucket is the +Inf overflow. Observe() is a few relaxed
/// atomics (one fetch_add, CAS loops for sum/min/max).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double v);

  /// Bucket index v falls into (exposed for tests).
  static int BucketIndex(double v);
  /// Inclusive upper bound of bucket i; the last bucket has no finite bound.
  static double UpperBound(int i);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-infinity sentinels make concurrent first observations race-free; the
  // snapshot reports 0 for both while the histogram is empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of one histogram, with only non-empty buckets.
struct HistogramSnapshot {
  struct Bucket {
    double upper_bound = 0.0;  // inclusive; +infinity for the overflow bucket
    int64_t count = 0;
  };
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<Bucket> buckets;
};

/// Stable point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when absent. Convenience for stage-delta math.
  int64_t CounterValue(const std::string& name) const;
};

/// Thread-safe name -> metric registry. Get* registers on first use and
/// returns a pointer that stays valid for the registry's lifetime; repeated
/// calls with the same name return the same object. A name identifies one
/// metric kind — requesting it as a different kind is a fatal error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry (never destroyed).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable cf::Mutex mu_{"metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ CF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CF_GUARDED_BY(mu_);
};

/// Serializes a snapshot as {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, min, max, buckets: [{le, count}]}}}.
std::string ToJson(const MetricsSnapshot& snapshot);

/// Writes ToJson() to `path`, creating missing parent directories. Returns
/// false (and logs the path) on I/O failure.
bool WriteJsonFile(const std::string& path, const MetricsSnapshot& snapshot);

/// Human-readable fixed-width dump of a snapshot (the CLI's --stats table).
std::string SummaryTable(const MetricsSnapshot& snapshot);

/// RAII stage timer: on destruction adds the elapsed microseconds to
/// `micros` and 1 to `calls` (either may be null). The pipeline stages use
/// one of these per call so per-stage wall time accumulates in the registry
/// (and epoch deltas can be read back by the training loop).
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter* micros, Counter* calls = nullptr)
      : micros_(micros), calls_(calls) {}
  ~ScopedTimer() {
    if (micros_ != nullptr) micros_->Increment(sw_.ElapsedMicros());
    if (calls_ != nullptr) calls_->Increment();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter* micros_;
  Counter* calls_;
  Stopwatch sw_;
};

}  // namespace metrics
}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_METRICS_H_
