#include "util/logging.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "util/sync.h"

namespace chainsformer {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// ANSI color for the severity tag; empty when the level has no color.
const char* LevelColor(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "\x1b[32m";  // green
    case LogLevel::kWarning:
      return "\x1b[33m";  // yellow
    case LogLevel::kError:
    case LogLevel::kFatal:
      return "\x1b[31m";  // red
  }
  return "";
}

LogLevel& MutableMinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

cf::Mutex& SinkMutex() {
  // Leaked: usable at teardown. Rank 100: the sink lock is the innermost
  // lock in the process — any subsystem may log while holding its own
  // mutexes, and the sink never calls back out (DESIGN §6h).
  static cf::Mutex* mu = new cf::Mutex("log.sink", 100);
  return *mu;
}

LogSink& MutableSink() {
  static LogSink* sink = new LogSink();
  return *sink;
}

bool StderrIsTty() {
  static const bool is_tty = isatty(fileno(stderr)) != 0;
  return is_tty;
}

/// "YYYY-MM-DD HH:MM:SS.mmm" in local time.
std::string WallClockNow() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf;
  localtime_r(&secs, &tm_buf);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec, millis);
  return buf;
}

}  // namespace

LogLevel MinLogLevel() { return MutableMinLogLevel(); }

void SetMinLogLevel(LogLevel level) { MutableMinLogLevel() = level; }

void SetLogSink(LogSink sink) {
  cf::MutexLock lock(SinkMutex());
  MutableSink() = std::move(sink);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::ostringstream header;
  header << "[" << LevelName(level) << " " << WallClockNow() << " " << base
         << ":" << line << "] ";
  header_ = header.str();
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    cf::MutexLock lock(SinkMutex());
    const LogSink& sink = MutableSink();
    if (sink) {
      sink(level_, header_ + stream_.str());
    } else if (StderrIsTty()) {
      // Color only the "[LEVEL" tag so the rest stays grep-friendly.
      const size_t tag_end = header_.find(' ');
      std::cerr << LevelColor(level_)  // cf-lint: allow(no-cout)
                << header_.substr(0, tag_end) << "\x1b[0m"
                << header_.substr(tag_end) << stream_.str() << std::endl;
    } else {
      // The logger is the stderr sink itself.
      std::cerr << header_ << stream_.str() << std::endl;  // cf-lint: allow(no-cout)
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace chainsformer
