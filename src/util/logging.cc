#include "util/logging.h"

#include <cstdlib>

namespace chainsformer {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

LogLevel& MutableMinLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace

LogLevel MinLogLevel() { return MutableMinLogLevel(); }

void SetMinLogLevel(LogLevel level) { MutableMinLogLevel() = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace chainsformer
