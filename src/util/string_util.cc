#include "util/string_util.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace chainsformer {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Strip(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatMetric(double v, int precision) {
  char buf[64];
  const double a = std::fabs(v);
  if (a != 0.0 && (a >= 1e5 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision > 1 ? 1 : precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool JsonField(const std::string& line, const std::string& key,
               std::string* out) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos >= line.size()) return false;
  if (line[pos] == '"') {
    const size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(pos + 1, end - pos - 1);
    return true;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(pos, end - pos);
  while (!out->empty() &&
         std::isspace(static_cast<unsigned char>(out->back()))) {
    out->pop_back();
  }
  return !out->empty();
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace chainsformer
