#include "util/flags.h"

#include <cstdlib>

#include "util/string_util.h"

namespace chainsformer {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& key) const {
  read_[key] = true;
  return flags_.count(key) != 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& def) const {
  read_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t def) const {
  read_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? def : std::atoll(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  read_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? def : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagParser::UnreadKeys() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : flags_) {
    auto it = read_.find(key);
    if (it == read_.end() || !it->second) unread.push_back(key);
  }
  return unread;
}

}  // namespace chainsformer
