#ifndef CHAINSFORMER_UTIL_TELEMETRY_H_
#define CHAINSFORMER_UTIL_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/sync.h"

namespace chainsformer {
namespace telemetry {

/// Live sliding-window telemetry for the serving stack.
///
/// The metrics registry (util/metrics.h) answers "what happened since
/// process start"; this layer answers "what is p99 *right now*". Both share
/// the same lock-free hot path: a WindowedHistogram is a time wheel of the
/// existing power-of-two bucket layout (metrics::Histogram::BucketIndex),
/// one slot per wheel tick. Observe() lands in the slot owning the current
/// tick; Snapshot() merges the slots still inside the window and reads
/// percentiles off the merged bucket counts, so a burst that ended two
/// minutes ago no longer drags today's p99.
///
/// Slot rotation is lazy: the first Observe()/Snapshot() that lands in an
/// expired slot resets it under a mutex; every other update is a pair of
/// relaxed atomic increments, so instrumenting the serve hot path costs the
/// same as a metrics::Histogram::Observe (bench/perf_microbench keeps the
/// combined per-request telemetry cost under 1% of a compiled dispatch).

/// Number of wheel slots and their width. 6 x 10s = a 60-second window,
/// matching the "what is p99 right now" horizon of a human watching a
/// dashboard.
constexpr int kDefaultSlots = 6;
constexpr int64_t kDefaultSlotMillis = 10'000;

/// Percentiles of one windowed histogram. Values are linearly interpolated
/// inside the matched power-of-two bucket, so they are estimates with
/// bucket-relative (< 2x) error — the right fidelity for live dashboards.
struct WindowedPercentiles {
  int64_t count = 0;  // observations inside the window
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max_bound = 0.0;  // upper bound of the highest non-empty bucket
};

/// Pow2-bucket histogram over a sliding time window (ring of slots rotated
/// on a time wheel). Thread-safe; Observe is lock-free except on the first
/// touch of a freshly-expired slot.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(int num_slots = kDefaultSlots,
                             int64_t slot_millis = kDefaultSlotMillis);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double v) { ObserveAtMs(v, NowMs()); }
  WindowedPercentiles Snapshot() const { return SnapshotAtMs(NowMs()); }

  /// Window span covered by a snapshot.
  double WindowSeconds() const {
    return static_cast<double>(num_slots_) *
           static_cast<double>(slot_millis_) * 1e-3;
  }

  /// Deterministic-time variants (exposed for tests; `now_ms` must be
  /// monotonically non-decreasing across calls, as a steady clock is).
  void ObserveAtMs(double v, int64_t now_ms);
  WindowedPercentiles SnapshotAtMs(int64_t now_ms) const;

  /// Milliseconds on the tracer's steady clock (trace::NowNs() / 1e6), so
  /// callers holding a NowNs() timestamp may pass `ns / 1'000'000` directly.
  static int64_t NowMs();

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};  // now_ms / slot_millis when last reset
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> buckets[metrics::Histogram::kNumBuckets] = {};
  };

  /// Resets `slot` for `epoch` if another thread has not already done so.
  void RotateSlot(Slot& slot, int64_t epoch) const;

  const int num_slots_;
  const int64_t slot_millis_;
  // Serializes slot *rotation* only; the slots themselves are atomics that
  // readers and writers touch without the mutex, so slots_ carries no
  // CF_GUARDED_BY (the pointer vector is immutable after construction).
  mutable cf::Mutex rotate_mu_{"telemetry.window_rotate"};
  // Pointer vector is immutable after construction; the slots are atomics.
  mutable std::vector<std::unique_ptr<Slot>> slots_;  // cf-lint: allow(unannotated-guarded-member)
};

/// Event counter over the same sliding window (time wheel of per-slot
/// sums). Sum() is the event count inside the window; rates follow as
/// Sum() / WindowSeconds() or as a fraction of another WindowedCounter.
class WindowedCounter {
 public:
  explicit WindowedCounter(int num_slots = kDefaultSlots,
                           int64_t slot_millis = kDefaultSlotMillis);

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void Increment(int64_t delta = 1) {
    IncrementAtMs(delta, WindowedHistogram::NowMs());
  }
  int64_t Sum() const { return SumAtMs(WindowedHistogram::NowMs()); }

  double WindowSeconds() const {
    return static_cast<double>(num_slots_) *
           static_cast<double>(slot_millis_) * 1e-3;
  }

  void IncrementAtMs(int64_t delta, int64_t now_ms);
  int64_t SumAtMs(int64_t now_ms) const;

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> sum{0};
  };

  const int num_slots_;
  const int64_t slot_millis_;
  // Rotation-only mutex; see WindowedHistogram::rotate_mu_.
  mutable cf::Mutex rotate_mu_{"telemetry.window_rotate"};
  // Pointer vector is immutable after construction; the slots are atomics.
  mutable std::vector<std::unique_ptr<Slot>> slots_;  // cf-lint: allow(unannotated-guarded-member)
};

/// Point-in-time view of every registered windowed metric, sorted by name.
struct TelemetrySnapshot {
  double window_seconds = 0.0;
  std::vector<std::pair<std::string, WindowedPercentiles>> histograms;
  std::vector<std::pair<std::string, int64_t>> counters;

  /// Windowed counter sum by name; 0 when absent.
  int64_t CounterSum(const std::string& name) const;
};

/// Thread-safe name -> windowed metric registry, mirroring
/// metrics::MetricsRegistry (same registration idiom, same process-lifetime
/// pointer guarantee, same kind-collision check).
class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// The process-global registry (never destroyed).
  static TelemetryRegistry& Global();

  WindowedHistogram* GetHistogram(const std::string& name);
  WindowedCounter* GetCounter(const std::string& name);

  TelemetrySnapshot Snapshot() const;

 private:
  mutable cf::Mutex mu_{"telemetry.registry"};
  std::map<std::string, std::unique_ptr<WindowedHistogram>> histograms_
      CF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters_
      CF_GUARDED_BY(mu_);
};

}  // namespace telemetry
}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_TELEMETRY_H_
