#ifndef CHAINSFORMER_UTIL_LOGGING_H_
#define CHAINSFORMER_UTIL_LOGGING_H_

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace chainsformer {

/// Severity levels for LogMessage.
enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Minimal streaming logger. A kFatal message aborts the process after the
/// message is flushed, which is how precondition violations are surfaced
/// (the library does not throw exceptions across its public API).
///
/// Messages carry a wall-clock timestamp and, when stderr is a TTY, a
/// severity-colored tag. Tests can intercept output with SetLogSink().
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string header_;  // "[LEVEL timestamp file:line] " (uncolored)
  std::ostringstream stream_;
};

/// Returns/sets the minimum level that is actually printed. Fatal messages
/// always print and abort regardless of this threshold.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Receives every emitted message (threshold already applied) as the plain,
/// uncolored "[LEVEL timestamp file:line] body" string.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Redirects log output to `sink` instead of stderr — tests capture log
/// lines with this instead of scraping stderr. Pass an empty function to
/// restore stderr output. kFatal still aborts after the sink runs.
void SetLogSink(LogSink sink);

}  // namespace chainsformer

#define CF_LOG(level)                                              \
  ::chainsformer::LogMessage(::chainsformer::LogLevel::k##level,   \
                             __FILE__, __LINE__)                   \
      .stream()

#define CF_CHECK(cond)                                                \
  if (!(cond))                                                        \
  ::chainsformer::LogMessage(::chainsformer::LogLevel::kFatal,        \
                             __FILE__, __LINE__)                      \
          .stream()                                                   \
      << "Check failed: " #cond " "

#define CF_CHECK_EQ(a, b) CF_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CF_CHECK_NE(a, b) CF_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CF_CHECK_LT(a, b) CF_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CF_CHECK_LE(a, b) CF_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CF_CHECK_GT(a, b) CF_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CF_CHECK_GE(a, b) CF_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // CHAINSFORMER_UTIL_LOGGING_H_
