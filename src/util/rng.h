#ifndef CHAINSFORMER_UTIL_RNG_H_
#define CHAINSFORMER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace chainsformer {

/// Deterministic 64-bit PRNG (xoshiro256**) seeded via SplitMix64.
///
/// All stochastic components in the library take an explicit seed (directly
/// or through an Rng&) so that every experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from a (non-negative, not necessarily normalized)
  /// weight vector. Requires at least one positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Returns a new Rng deterministically derived from this one; advancing
  /// the child never affects the parent stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_RNG_H_
