#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/sync.h"

namespace chainsformer {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct Span {
  const char* name;
  uint64_t start_ns;
  uint64_t end_ns;
  int depth;
  SpanAnnotations ann;  // request-scoped facts (all-default for CF_TRACE_SCOPE)
};

/// One ring per traced thread. The owning thread appends under `mu`
/// (uncontended except while a drain is in progress); the registry keeps a
/// shared_ptr so spans survive the owning thread's exit.
struct ThreadBuffer {
  // Clang exempts constructors from the guarded-member analysis: the buffer
  // is not shared until it is registered.
  ThreadBuffer() { ring.resize(kRingCapacity); }

  // Rank 30 > registry rank 20: drains hold the registry lock across each
  // buffer lock, so buffers are inner (DESIGN §6h).
  cf::Mutex mu{"trace.thread_buffer", 30};
  std::vector<Span> ring CF_GUARDED_BY(mu);
  size_t next CF_GUARDED_BY(mu) = 0;       // next write slot
  size_t size CF_GUARDED_BY(mu) = 0;       // valid spans (<= kRingCapacity)
  uint64_t dropped CF_GUARDED_BY(mu) = 0;  // spans overwritten by wraparound
  // Written once before the buffer is published to the registry.
  int tid = 0;  // cf-lint: allow(unannotated-guarded-member) immutable
};

struct Registry {
  cf::Mutex mu{"trace.registry", 20};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers CF_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: see metrics.cc
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = GetRegistry();
    cf::MutexLock lock(reg.mu);
    b->tid = static_cast<int>(reg.buffers.size());
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local int t_depth = 0;

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Appends a completed span to the calling thread's ring buffer.
void Record(const char* name, uint64_t start_ns, uint64_t end_ns, int depth,
            const SpanAnnotations& ann) {
  ThreadBuffer& buf = LocalBuffer();
  cf::MutexLock lock(buf.mu);
  buf.ring[buf.next] = {name, start_ns, end_ns, depth, ann};
  buf.next = (buf.next + 1) % kRingCapacity;
  if (buf.size < kRingCapacity) {
    ++buf.size;
  } else {
    ++buf.dropped;  // overwrote the oldest span
  }
}

}  // namespace

uint64_t NowNs() {
  // Steady-clock ticks relative to a process-global base, so Chrome's
  // timeline starts near zero.
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns,
              const SpanAnnotations& ann) {
  if (!Enabled()) return;
  if (end_ns < start_ns) end_ns = start_ns;
  Record(name, start_ns, end_ns, t_depth, ann);
}

namespace internal {

void BeginSpan(const char* name, uint64_t* start_ns, int* depth) {
  (void)name;
  *depth = t_depth++;
  *start_ns = NowNs();
}

void EndSpan(const char* name, uint64_t start_ns, int depth) {
  const uint64_t end_ns = NowNs();
  t_depth = depth;  // robust even if enabling raced with scope entry
  Record(name, start_ns, end_ns, depth, SpanAnnotations{});
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t BufferedSpans() {
  Registry& reg = GetRegistry();
  cf::MutexLock lock(reg.mu);
  size_t total = 0;
  for (const auto& b : reg.buffers) {
    cf::MutexLock buf_lock(b->mu);
    total += b->size;
  }
  return total;
}

uint64_t DroppedSpans() {
  Registry& reg = GetRegistry();
  cf::MutexLock lock(reg.mu);
  uint64_t total = 0;
  for (const auto& b : reg.buffers) {
    cf::MutexLock buf_lock(b->mu);
    total += b->dropped;
  }
  return total;
}

void Clear() {
  Registry& reg = GetRegistry();
  cf::MutexLock lock(reg.mu);
  for (const auto& b : reg.buffers) {
    cf::MutexLock buf_lock(b->mu);
    b->next = 0;
    b->size = 0;
    b->dropped = 0;
  }
}

std::string DrainChromeTraceJson() {
  struct Drained {
    Span span;
    int tid;
  };
  std::vector<Drained> spans;
  {
    Registry& reg = GetRegistry();
    cf::MutexLock lock(reg.mu);
    for (const auto& b : reg.buffers) {
      cf::MutexLock buf_lock(b->mu);
      // Oldest-first: the ring's oldest entry sits at `next` once wrapped.
      const size_t start = b->size == kRingCapacity ? b->next : 0;
      for (size_t i = 0; i < b->size; ++i) {
        spans.push_back({b->ring[(start + i) % kRingCapacity], b->tid});
      }
      b->next = 0;
      b->size = 0;
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Drained& a, const Drained& b) {
                     return a.span.start_ns < b.span.start_ns;
                   });
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Drained& d : spans) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; ts/dur are microseconds (Chrome's unit).
    char head[64];
    std::snprintf(head, sizeof(head), "%.3f", d.span.start_ns / 1e3);
    char dur[64];
    std::snprintf(dur, sizeof(dur), "%.3f",
                  (d.span.end_ns - d.span.start_ns) / 1e3);
    os << "\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << d.tid << ", \"name\": \""
       << EscapeJson(d.span.name) << "\", \"ts\": " << head
       << ", \"dur\": " << dur << ", \"args\": {\"depth\": " << d.span.depth;
    const SpanAnnotations& ann = d.span.ann;
    if (ann.trace_id != 0) {
      // Stringified so a 64-bit id survives viewers that parse numbers as
      // doubles (2^53 mantissa).
      os << ", \"trace_id\": \"" << ann.trace_id << "\"";
    }
    if (ann.batch_id >= 0) os << ", \"batch_id\": " << ann.batch_id;
    if (ann.batch_size > 0) os << ", \"batch_size\": " << ann.batch_size;
    if (ann.dedup_collapsed) os << ", \"dedup_collapsed\": true";
    if (ann.cause != nullptr) {
      os << ", \"cause\": \"" << EscapeJson(ann.cause) << "\"";
    }
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool WriteChromeTrace(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out.good()) {
    CF_LOG(Error) << "trace: cannot open " << path << " for writing";
    return false;
  }
  out << DrainChromeTraceJson();
  return out.good();
}

}  // namespace trace
}  // namespace chainsformer
