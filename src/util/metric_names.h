#ifndef CHAINSFORMER_UTIL_METRIC_NAMES_H_
#define CHAINSFORMER_UTIL_METRIC_NAMES_H_

namespace chainsformer {
namespace metrics {
namespace names {

/// Central registry of every metric/histogram/gauge name in the library.
///
/// Instrumented code must spell names through these constants instead of
/// repeating dotted string literals at the call site — a typo in a literal
/// silently creates a brand-new (and forever-empty) series, which no test
/// can catch. The cf_lint rule `metric-name-literal` rejects string-literal
/// arguments to MetricsRegistry::Get{Counter,Gauge,Histogram} and
/// TelemetryRegistry::Get{Counter,Histogram} anywhere under src/.
///
/// Grouping mirrors the subsystem prefixes (`pipeline.`, `serve.`, ...).
/// Keep the list sorted within each group when adding names.

// --- thread pool -----------------------------------------------------------
inline constexpr char kThreadpoolInlineRuns[] = "threadpool.inline_runs";
inline constexpr char kThreadpoolRangeTasks[] = "threadpool.range_tasks";
inline constexpr char kThreadpoolTasksScheduled[] = "threadpool.tasks_scheduled";

// --- dense kernel layer ----------------------------------------------------
inline constexpr char kKernelsDispatchInline[] = "kernels.dispatch_inline";
inline constexpr char kKernelsDispatchPooled[] = "kernels.dispatch_pooled";
inline constexpr char kKernelsRowsPerDispatch[] = "kernels.rows_per_dispatch";
inline constexpr char kKernelsTasksDispatched[] = "kernels.tasks_dispatched";

// --- tape sanitizer --------------------------------------------------------
inline constexpr char kTapeLeakedRoots[] = "tape.leaked_roots";
inline constexpr char kTapePoisonEvents[] = "tape.poison_events";
inline constexpr char kTapeVersionViolations[] = "tape.version_violations";

// --- KG loading ------------------------------------------------------------
inline constexpr char kKgLoadCalls[] = "kg.load.calls";
inline constexpr char kKgLoadMicros[] = "kg.load.micros";
inline constexpr char kKgLoadNumericalTriples[] = "kg.load.numerical_triples";
inline constexpr char kKgLoadRelationalTriples[] = "kg.load.relational_triples";

// --- pipeline stages -------------------------------------------------------
inline constexpr char kPipelineAggregateCalls[] = "pipeline.aggregate.calls";
inline constexpr char kPipelineAggregateMicros[] = "pipeline.aggregate.micros";
inline constexpr char kPipelineEncodeCalls[] = "pipeline.encode.calls";
inline constexpr char kPipelineEncodeMicros[] = "pipeline.encode.micros";
inline constexpr char kPipelineFilterCalls[] = "pipeline.filter.calls";
inline constexpr char kPipelineFilterMicros[] = "pipeline.filter.micros";
inline constexpr char kPipelineProjectCalls[] = "pipeline.project.calls";
inline constexpr char kPipelineProjectMicros[] = "pipeline.project.micros";
inline constexpr char kPipelineRetrievalCalls[] = "pipeline.retrieval.calls";
inline constexpr char kPipelineRetrievalMicros[] = "pipeline.retrieval.micros";

inline constexpr char kRetrievalChainsGenerated[] = "retrieval.chains_generated";
inline constexpr char kRetrievalDuplicatesSuppressed[] =
    "retrieval.duplicates_suppressed";
inline constexpr char kRetrievalTocSize[] = "retrieval.toc_size";
inline constexpr char kRetrievalWalksEmpty[] = "retrieval.walks_empty";
inline constexpr char kRetrievalWalksTaken[] = "retrieval.walks_taken";

inline constexpr char kFilterChainsDropped[] = "filter.chains_dropped";
inline constexpr char kFilterChainsIn[] = "filter.chains_in";
inline constexpr char kFilterChainsKept[] = "filter.chains_kept";
inline constexpr char kFilterDistanceDropped[] = "filter.distance_dropped";
inline constexpr char kFilterDistanceKept[] = "filter.distance_kept";

inline constexpr char kEncodeBatchedPasses[] = "encode.batched_passes";
inline constexpr char kEncodeBatchPadFractionPct[] =
    "encode.batch_pad_fraction_pct";
inline constexpr char kEncodeChainLength[] = "encode.chain_length";
inline constexpr char kEncodeChainsEncoded[] = "encode.chains_encoded";

inline constexpr char kReasonerChainsPerForward[] =
    "reasoner.chains_per_forward";
inline constexpr char kReasonerForwards[] = "reasoner.forwards";

// --- training / evaluation -------------------------------------------------
inline constexpr char kEvalFallbacks[] = "eval.fallbacks";
inline constexpr char kEvalQueries[] = "eval.queries";
inline constexpr char kTrainEpochMillis[] = "train.epoch_millis";
inline constexpr char kTrainEpochs[] = "train.epochs";
inline constexpr char kTrainLastLoss[] = "train.last_loss";
inline constexpr char kTrainLastValidNmae[] = "train.last_valid_nmae";
inline constexpr char kTrainQueries[] = "train.queries";
inline constexpr char kTrainQueriesSkipped[] = "train.queries_skipped";

// --- static-graph runtime --------------------------------------------------
inline constexpr char kPlanArenaBytes[] = "plan.arena_bytes";
inline constexpr char kPlanCacheHits[] = "plan.cache_hits";
inline constexpr char kPlanCacheMisses[] = "plan.cache_misses";
inline constexpr char kPlanQuantFallbacks[] = "plan.quant_fallbacks";
inline constexpr char kPlanVerifyFailures[] = "plan.verify_failures";
inline constexpr char kPlanVerifyMicros[] = "plan.verify_micros";

// --- router (entity-sharded fan-out front-end) -----------------------------
inline constexpr char kRouterDegraded[] = "router.degraded";
inline constexpr char kRouterFanoutBatches[] = "router.fanout_batches";
inline constexpr char kRouterHealthProbes[] = "router.health_probes";
inline constexpr char kRouterRequests[] = "router.requests";
inline constexpr char kRouterRerouted[] = "router.rerouted";
inline constexpr char kRouterShardErrors[] = "router.shard_errors";

// --- serving ---------------------------------------------------------------
inline constexpr char kServeBatchDedup[] = "serve.batch_dedup";
inline constexpr char kServeBatchSize[] = "serve.batch_size";
inline constexpr char kServeCacheHits[] = "serve.cache_hits";
inline constexpr char kServeCacheMisses[] = "serve.cache_misses";
inline constexpr char kServeConnsAccepted[] = "serve.conns_accepted";
inline constexpr char kServeDegraded[] = "serve.degraded";
inline constexpr char kServeDegradedDeadline[] = "serve.degraded.deadline";
inline constexpr char kServeDegradedEmptyToc[] = "serve.degraded.empty_toc";
inline constexpr char kServeDegradedShutdown[] = "serve.degraded.shutdown";
inline constexpr char kServeImmediateDispatch[] = "serve.immediate_dispatch";
inline constexpr char kServeLatencyUs[] = "serve.latency_us";
inline constexpr char kServeMisrouted[] = "serve.misrouted";
inline constexpr char kServeQuantRejected[] = "serve.quant_rejected";
inline constexpr char kServeRequests[] = "serve.requests";

// --- per-request phase latencies (sliding-window percentiles; the admin
// --- endpoint reports live p50/p90/p99 for each of these) ------------------
inline constexpr char kServePhaseCacheUs[] = "serve.phase.cache_us";
inline constexpr char kServePhaseComputeUs[] = "serve.phase.compute_us";
inline constexpr char kServePhaseQueueUs[] = "serve.phase.queue_us";
inline constexpr char kServePhaseSerializeUs[] = "serve.phase.serialize_us";
inline constexpr char kServePhaseTotalUs[] = "serve.phase.total_us";
inline constexpr char kServePhaseVerifyUs[] = "serve.phase.verify_us";
inline constexpr char kServePhaseWindowUs[] = "serve.phase.window_us";

// --- SLO tracking (sliding-window counters feeding rate computation) -------
inline constexpr char kSloDeadlineMiss[] = "slo.deadline_miss";
inline constexpr char kSloDegraded[] = "slo.degraded";
inline constexpr char kSloDegradedDeadline[] = "slo.degraded.deadline";
inline constexpr char kSloDegradedEmptyToc[] = "slo.degraded.empty_toc";
inline constexpr char kSloDegradedShutdown[] = "slo.degraded.shutdown";
inline constexpr char kSloRequests[] = "slo.requests";
inline constexpr char kSloShardDown[] = "slo.shard_down";

}  // namespace names
}  // namespace metrics
}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_METRIC_NAMES_H_
