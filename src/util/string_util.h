#ifndef CHAINSFORMER_UTIL_STRING_UTIL_H_
#define CHAINSFORMER_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace chainsformer {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading/trailing ASCII whitespace.
std::string Strip(const std::string& s);

/// Formats a double compactly for table output: fixed for moderate
/// magnitudes, scientific (e.g. "1.7e+08") for very large/small values.
std::string FormatMetric(double v, int precision = 3);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_STRING_UTIL_H_
