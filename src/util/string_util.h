#ifndef CHAINSFORMER_UTIL_STRING_UTIL_H_
#define CHAINSFORMER_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace chainsformer {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading/trailing ASCII whitespace.
std::string Strip(const std::string& s);

/// Formats a double compactly for table output: fixed for moderate
/// magnitudes, scientific (e.g. "1.7e+08") for very large/small values.
std::string FormatMetric(double v, int precision = 3);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Extracts `"key": <string-or-number>` from a flat one-line JSON object —
/// the NDJSON request/response grammar shared by the serve tool, the router
/// and the shard protocol (a full JSON parser would be dead weight for flat
/// objects). String values come back without their quotes, numbers/booleans
/// as the raw token. Returns false when the key is absent or the value is
/// empty. Not a validator: nested objects and escaped quotes inside string
/// values are out of grammar.
bool JsonField(const std::string& line, const std::string& key,
               std::string* out);

/// Escapes `"` and `\` so `s` can be embedded in a JSON string literal.
std::string EscapeJson(const std::string& s);

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_STRING_UTIL_H_
