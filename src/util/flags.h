#ifndef CHAINSFORMER_UTIL_FLAGS_H_
#define CHAINSFORMER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chainsformer {

/// Minimal command-line parser for the CLI tool: positional arguments plus
/// `--key=value` / `--key value` / boolean `--key` flags.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// Positional arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Keys that were provided but never read (typo detection).
  std::vector<std::string> UnreadKeys() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_FLAGS_H_
