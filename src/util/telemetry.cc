#include "util/telemetry.h"

#include <algorithm>

#include "util/logging.h"
#include "util/trace.h"

namespace chainsformer {
namespace telemetry {
namespace {

/// Percentile over merged pow2 buckets: find the bucket holding the target
/// rank, then interpolate linearly between its bounds. The overflow bucket
/// has no finite upper bound; report its lower bound (already "absurdly
/// slow" territory for the latencies tracked here).
double PercentileFromBuckets(
    const int64_t (&buckets)[metrics::Histogram::kNumBuckets], int64_t total,
    double p) {
  if (total <= 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  int64_t cumulative = 0;
  for (int i = 0; i < metrics::Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower =
        i == 0 ? 0.0 : metrics::Histogram::UpperBound(i - 1);
    if (i == metrics::Histogram::kNumBuckets - 1) return lower;
    const double upper = metrics::Histogram::UpperBound(i);
    const double into_bucket =
        rank - static_cast<double>(cumulative - buckets[i]);
    const double fraction =
        std::clamp(into_bucket / static_cast<double>(buckets[i]), 0.0, 1.0);
    return lower + fraction * (upper - lower);
  }
  return metrics::Histogram::UpperBound(metrics::Histogram::kNumBuckets - 2);
}

}  // namespace

int64_t WindowedHistogram::NowMs() {
  // Shares the tracer's steady-clock base so serve-path instrumentation can
  // feed timestamps it already holds (trace::NowNs() / 1'000'000) into
  // ObserveAtMs/IncrementAtMs without a second clock read — and without ever
  // mixing wheel timebases.
  return static_cast<int64_t>(trace::NowNs() / 1'000'000);
}

WindowedHistogram::WindowedHistogram(int num_slots, int64_t slot_millis)
    : num_slots_(std::max(1, num_slots)),
      slot_millis_(std::max<int64_t>(1, slot_millis)) {
  slots_.reserve(static_cast<size_t>(num_slots_));
  for (int i = 0; i < num_slots_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void WindowedHistogram::RotateSlot(Slot& slot, int64_t epoch) const {
  cf::MutexLock lock(rotate_mu_);
  if (slot.epoch.load(std::memory_order_relaxed) == epoch) return;
  for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  slot.count.store(0, std::memory_order_relaxed);
  slot.epoch.store(epoch, std::memory_order_release);
}

void WindowedHistogram::ObserveAtMs(double v, int64_t now_ms) {
  const int64_t epoch = now_ms / slot_millis_;
  Slot& slot = *slots_[static_cast<size_t>(epoch % num_slots_)];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    RotateSlot(slot, epoch);
  }
  slot.buckets[metrics::Histogram::BucketIndex(v)].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
}

WindowedPercentiles WindowedHistogram::SnapshotAtMs(int64_t now_ms) const {
  const int64_t current_epoch = now_ms / slot_millis_;
  const int64_t oldest_live = current_epoch - num_slots_ + 1;
  int64_t merged[metrics::Histogram::kNumBuckets] = {};
  WindowedPercentiles out;
  for (const auto& slot : slots_) {
    const int64_t epoch = slot->epoch.load(std::memory_order_acquire);
    if (epoch < oldest_live || epoch > current_epoch) continue;
    out.count += slot->count.load(std::memory_order_relaxed);
    for (int i = 0; i < metrics::Histogram::kNumBuckets; ++i) {
      merged[i] += slot->buckets[i].load(std::memory_order_relaxed);
    }
  }
  // Merged bucket sums can momentarily exceed the count sum while another
  // thread is mid-Observe; percentile ranks use the bucket total so the
  // walk always terminates inside the table.
  int64_t bucket_total = 0;
  for (int i = 0; i < metrics::Histogram::kNumBuckets; ++i) {
    bucket_total += merged[i];
    if (merged[i] > 0) {
      out.max_bound = i == metrics::Histogram::kNumBuckets - 1
                          ? metrics::Histogram::UpperBound(i - 1)
                          : metrics::Histogram::UpperBound(i);
    }
  }
  out.count = std::max(out.count, bucket_total);
  out.p50 = PercentileFromBuckets(merged, bucket_total, 0.50);
  out.p90 = PercentileFromBuckets(merged, bucket_total, 0.90);
  out.p99 = PercentileFromBuckets(merged, bucket_total, 0.99);
  return out;
}

WindowedCounter::WindowedCounter(int num_slots, int64_t slot_millis)
    : num_slots_(std::max(1, num_slots)),
      slot_millis_(std::max<int64_t>(1, slot_millis)) {
  slots_.reserve(static_cast<size_t>(num_slots_));
  for (int i = 0; i < num_slots_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void WindowedCounter::IncrementAtMs(int64_t delta, int64_t now_ms) {
  const int64_t epoch = now_ms / slot_millis_;
  Slot& slot = *slots_[static_cast<size_t>(epoch % num_slots_)];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    cf::MutexLock lock(rotate_mu_);
    if (slot.epoch.load(std::memory_order_relaxed) != epoch) {
      slot.sum.store(0, std::memory_order_relaxed);
      slot.epoch.store(epoch, std::memory_order_release);
    }
  }
  slot.sum.fetch_add(delta, std::memory_order_relaxed);
}

int64_t WindowedCounter::SumAtMs(int64_t now_ms) const {
  const int64_t current_epoch = now_ms / slot_millis_;
  const int64_t oldest_live = current_epoch - num_slots_ + 1;
  int64_t total = 0;
  for (const auto& slot : slots_) {
    const int64_t epoch = slot->epoch.load(std::memory_order_acquire);
    if (epoch < oldest_live || epoch > current_epoch) continue;
    total += slot->sum.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t TelemetrySnapshot::CounterSum(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

TelemetryRegistry& TelemetryRegistry::Global() {
  // Leaked intentionally, like metrics::MetricsRegistry::Global(): cached
  // pointers in instrumented code must survive static teardown.
  static TelemetryRegistry* registry = new TelemetryRegistry();
  return *registry;
}

WindowedHistogram* TelemetryRegistry::GetHistogram(const std::string& name) {
  cf::MutexLock lock(mu_);
  CF_CHECK(counters_.count(name) == 0)
      << "windowed metric '" << name
      << "' already registered with a different kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<WindowedHistogram>())
             .first;
  }
  return it->second.get();
}

WindowedCounter* TelemetryRegistry::GetCounter(const std::string& name) {
  cf::MutexLock lock(mu_);
  CF_CHECK(histograms_.count(name) == 0)
      << "windowed metric '" << name
      << "' already registered with a different kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<WindowedCounter>()).first;
  }
  return it->second.get();
}

TelemetrySnapshot TelemetryRegistry::Snapshot() const {
  cf::MutexLock lock(mu_);
  TelemetrySnapshot snap;
  const int64_t now_ms = WindowedHistogram::NowMs();
  for (const auto& [name, h] : histograms_) {
    snap.window_seconds = std::max(snap.window_seconds, h->WindowSeconds());
    snap.histograms.emplace_back(name, h->SnapshotAtMs(now_ms));
  }
  for (const auto& [name, c] : counters_) {
    snap.window_seconds = std::max(snap.window_seconds, c->WindowSeconds());
    snap.counters.emplace_back(name, c->SumAtMs(now_ms));
  }
  return snap;
}

}  // namespace telemetry
}  // namespace chainsformer
