#ifndef CHAINSFORMER_UTIL_STOPWATCH_H_
#define CHAINSFORMER_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace chainsformer {

/// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed whole microseconds since construction or last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace chainsformer

#endif  // CHAINSFORMER_UTIL_STOPWATCH_H_
