#ifndef CHAINSFORMER_UTIL_SYNC_H_
#define CHAINSFORMER_UTIL_SYNC_H_

// Annotated synchronization primitives for the whole codebase (DESIGN §6h).
//
// Every mutex in src/ is a cf::Mutex and every mutex-protected member
// carries CF_GUARDED_BY, so the locking protocol is machine-checked two
// ways:
//
//   1. Statically: under Clang the CF_* macros expand to the thread-safety
//      capability attributes, and the `thread_safety` check target compiles
//      src/ with -Wthread-safety -Werror=thread-safety — an access to a
//      guarded member without its mutex is a build failure, not a latent
//      race. Under GCC the macros are no-ops and the wrappers compile down
//      to std::mutex.
//
//   2. Dynamically: each cf::Mutex registers a name (and optional rank)
//      with a process-global lock-order validator. When validation is on,
//      acquisitions record per-thread held-lock sets into a lock-order
//      graph; the first cycle (a potential deadlock) aborts naming both
//      mutexes and the two acquisition stacks — the same fail-loud contract
//      as the tape sanitizer (DESIGN §6d). Two gates: the CF_SYNC_VALIDATOR
//      compile gate (hooks in debug trees, compiled out to a bare
//      std::mutex under NDEBUG — the perf_microbench guardrail pins release
//      lock()/unlock() at <= 1% over raw) and, within hooks-compiled-in
//      TUs, a runtime flag (CF_SYNC_VALIDATE=0/1 env or
//      SetDeadlockValidation) defaulting on outside NDEBUG.
//
// Naming: mutexes protecting the same logical resource share a name
// ("serve.cache_shard" for every cache shard), so the lock-order graph is
// over acquisition *sites*, not instances. Ranks are optional: a nonzero
// rank asserts the mutex is only acquired while every held nonzero-ranked
// mutex has a strictly smaller rank (an immediate, deterministic ordering
// check that does not wait for a cycle to close).

#include <atomic>
#include <condition_variable>  // cf-lint: allow(naked-mutex-outside-sync)
#include <mutex>               // cf-lint: allow(naked-mutex-outside-sync)
#include <utility>

// --- Clang thread-safety capability attributes (no-op elsewhere) ------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CF_THREAD_ANNOTATION
#define CF_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define CF_CAPABILITY(x) CF_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires a capability for its lifetime.
#define CF_SCOPED_CAPABILITY CF_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read/written while holding `x`.
#define CF_GUARDED_BY(x) CF_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding `x` (the pointer itself is free).
#define CF_PT_GUARDED_BY(x) CF_THREAD_ANNOTATION(pt_guarded_by(x))
/// Declares static acquisition order between mutex members.
#define CF_ACQUIRED_BEFORE(...) CF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CF_ACQUIRED_AFTER(...) CF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Caller must hold the listed capabilities.
#define CF_REQUIRES(...) CF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities and does not release them.
#define CF_ACQUIRE(...) CF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define CF_RELEASE(...) CF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define CF_TRY_ACQUIRE(...) CF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock guard).
#define CF_EXCLUDES(...) CF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define CF_RETURN_CAPABILITY(x) CF_THREAD_ANNOTATION(lock_returned(x))
/// Opts a function body out of the static analysis (condition-variable
/// predicates and lock-juggling internals; the dynamic validator still sees
/// every acquisition).
#define CF_NO_THREAD_SAFETY_ANALYSIS \
  CF_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- Lock-order validator compile gate --------------------------------------
//
// CF_SYNC_VALIDATOR=1 compiles the validator hooks into lock()/unlock();
// CF_SYNC_VALIDATOR=0 compiles them out, leaving cf::Mutex a bare std::mutex
// (the perf_microbench guardrail pins that at <= 1% over raw — even a
// perfectly predicted flag check costs more). Default: hooks in debug trees
// (Debug/Asan/Tsan carry no NDEBUG), bare mutex in release. sync_test forces
// the hooks on via a target compile definition so the lock-order death tests
// run in every build type. Within a hooks-compiled-in TU the runtime flag
// below still gates the work, so CF_SYNC_VALIDATE / SetDeadlockValidation
// can turn validation off without rebuilding.
#if !defined(CF_SYNC_VALIDATOR)
#ifdef NDEBUG
#define CF_SYNC_VALIDATOR 0
#else
#define CF_SYNC_VALIDATOR 1
#endif
#endif

namespace cf {

namespace sync_internal {

/// Validator on/off flag. Defined in sync.cc with the env/NDEBUG default;
/// zero-initialized false until that dynamic initializer runs, so pre-main
/// acquisitions simply skip validation.
extern std::atomic<bool> g_validation_enabled;

/// True when the lock-order validator is active. Inline on purpose: this
/// sits on every lock()/unlock(), and a relaxed load + predicted branch is
/// what keeps the disabled path within the 1% perf_microbench budget (an
/// out-of-line call here costs more than the check it guards).
inline bool ValidationEnabled() {
  return g_validation_enabled.load(std::memory_order_relaxed);
}

/// Validator hooks called by Mutex around the underlying acquisition.
/// `site` interns `name` on first use and caches the node id. Atomic:
/// concurrent first acquisitions of one mutex read the cache while the
/// interning thread writes it (interning is idempotent, so relaxed is
/// enough — at worst both threads intern the same name to the same id).
struct SiteId {
  std::atomic<int> id{-1};  // interned graph node; -1 until first acquisition
};
void OnAcquire(const void* mu, const char* name, int rank, SiteId* site);
void OnRelease(const void* mu);

}  // namespace sync_internal

/// Turns the lock-order validator on/off process-wide (tests and tools;
/// normal builds follow the NDEBUG / CF_SYNC_VALIDATE default described in
/// the header comment).
void SetDeadlockValidation(bool enabled);
/// Current validator state (after env/default resolution).
bool DeadlockValidationEnabled();

/// Drops every recorded lock-order edge (test isolation; not for production
/// use — forgetting history weakens cycle detection).
void ResetLockOrderGraphForTesting();
/// Number of distinct lock-order edges recorded so far.
int LockOrderEdgeCountForTesting();

/// Annotated std::mutex wrapper. The name keys the lock-order graph (share
/// one name across instances protecting the same kind of resource); the
/// optional rank asserts a static acquisition order (see header comment).
class CF_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "mutex", int rank = 0)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CF_ACQUIRE() {
#if CF_SYNC_VALIDATOR
    if (sync_internal::ValidationEnabled()) {
      sync_internal::OnAcquire(this, name_, rank_, &site_);
    }
#endif
    mu_.lock();
  }

  void unlock() CF_RELEASE() {
    mu_.unlock();
#if CF_SYNC_VALIDATOR
    if (sync_internal::ValidationEnabled()) {
      sync_internal::OnRelease(this);
    }
#endif
  }

  bool try_lock() CF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if CF_SYNC_VALIDATOR
    // A successful try_lock held no one up, but it still participates in
    // the ordering protocol: record it like a blocking acquisition.
    if (sync_internal::ValidationEnabled()) {
      sync_internal::OnAcquire(this, name_, rank_, &site_);
    }
#endif
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  // The one wrapped raw mutex in the codebase.
  std::mutex mu_;  // cf-lint: allow(naked-mutex-outside-sync)
  const char* name_;
  const int rank_;
  sync_internal::SiteId site_;
};

/// RAII lock for a cf::Mutex (the std::lock_guard of this layer).
class CF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with cf::Mutex. Waits go through
/// std::condition_variable_any directly on the Mutex, so every re-lock on
/// wakeup passes through the validator like any other acquisition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` is true. Caller holds `mu`; the predicate runs
  /// with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CF_REQUIRES(mu)
      CF_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  /// Like Wait with a relative timeout; returns pred() at exit.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Pred pred) CF_REQUIRES(mu) CF_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, timeout, std::move(pred));
  }

  /// Like Wait with an absolute deadline; returns pred() at exit.
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) CF_REQUIRES(mu) CF_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // _any so waits relock through cf::Mutex (and thus the validator).
  std::condition_variable_any cv_;  // cf-lint: allow(naked-mutex-outside-sync)
};

}  // namespace cf

#endif  // CHAINSFORMER_UTIL_SYNC_H_
